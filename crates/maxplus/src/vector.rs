//! Column vectors over the (max,+) semiring.
//!
//! In the paper's notation, `U(k)`, `X(k)`, and `Y(k)` — the input,
//! intermediate, and output evolution-instant vectors of eqs. (7)–(10) — are
//! values of this type.

use core::fmt;
use core::ops::{Index, IndexMut};

use crate::MaxPlus;

/// A dense column vector of [`MaxPlus`] elements.
///
/// # Examples
///
/// ```
/// use evolve_maxplus::{MaxPlus, Vector};
///
/// let u = Vector::from_finite(&[0, 5, 3]);
/// let v = Vector::epsilon(3);
/// assert_eq!(u.oplus(&v), u); // ε-vector is the ⊕ identity
/// assert_eq!(u.max_element(), MaxPlus::new(5));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Vector {
    elems: Vec<MaxPlus>,
}

impl Vector {
    /// Creates a vector from its elements.
    pub fn new(elems: Vec<MaxPlus>) -> Self {
        Vector { elems }
    }

    /// Creates an all-`ε` vector of dimension `dim`.
    pub fn epsilon(dim: usize) -> Self {
        Vector {
            elems: vec![MaxPlus::EPSILON; dim],
        }
    }

    /// Creates an all-`e` (zero) vector of dimension `dim`.
    pub fn e(dim: usize) -> Self {
        Vector {
            elems: vec![MaxPlus::E; dim],
        }
    }

    /// Creates a vector of finite elements from plain integers.
    pub fn from_finite(values: &[i64]) -> Self {
        Vector {
            elems: values.iter().map(|&v| MaxPlus::new(v)).collect(),
        }
    }

    /// The dimension (number of elements).
    pub fn dim(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Element access without panicking.
    pub fn get(&self, i: usize) -> Option<MaxPlus> {
        self.elems.get(i).copied()
    }

    /// The underlying elements.
    pub fn as_slice(&self) -> &[MaxPlus] {
        &self.elems
    }

    /// Mutable access to the underlying elements.
    pub fn as_mut_slice(&mut self) -> &mut [MaxPlus] {
        &mut self.elems
    }

    /// Consumes the vector, returning its elements.
    pub fn into_inner(self) -> Vec<MaxPlus> {
        self.elems
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> core::slice::Iter<'_, MaxPlus> {
        self.elems.iter()
    }

    /// Element-wise `⊕` (max).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn oplus(&self, rhs: &Vector) -> Vector {
        assert_eq!(self.dim(), rhs.dim(), "vector dimension mismatch");
        Vector {
            elems: self
                .elems
                .iter()
                .zip(&rhs.elems)
                .map(|(&a, &b)| a.oplus(b))
                .collect(),
        }
    }

    /// In-place element-wise `⊕` (max).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn oplus_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.dim(), rhs.dim(), "vector dimension mismatch");
        for (a, &b) in self.elems.iter_mut().zip(&rhs.elems) {
            *a = a.oplus(b);
        }
    }

    /// Scales every element by `⊗ scalar` (shifts all instants by a lag).
    #[must_use]
    pub fn otimes_scalar(&self, scalar: MaxPlus) -> Vector {
        Vector {
            elems: self.elems.iter().map(|&a| a.otimes(scalar)).collect(),
        }
    }

    /// The largest element (`ε` for the empty vector): the completion instant
    /// of a full synchronization over all components.
    pub fn max_element(&self) -> MaxPlus {
        self.elems.iter().copied().sum()
    }

    /// Returns `true` when every element is `ε`.
    pub fn is_all_epsilon(&self) -> bool {
        self.elems.iter().all(|e| e.is_epsilon())
    }
}

impl Index<usize> for Vector {
    type Output = MaxPlus;
    fn index(&self, i: usize) -> &MaxPlus {
        &self.elems[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut MaxPlus {
        &mut self.elems[i]
    }
}

impl FromIterator<MaxPlus> for Vector {
    fn from_iter<I: IntoIterator<Item = MaxPlus>>(iter: I) -> Self {
        Vector {
            elems: iter.into_iter().collect(),
        }
    }
}

impl Extend<MaxPlus> for Vector {
    fn extend<I: IntoIterator<Item = MaxPlus>>(&mut self, iter: I) {
        self.elems.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a MaxPlus;
    type IntoIter = core::slice::Iter<'a, MaxPlus>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

impl IntoIterator for Vector {
    type Item = MaxPlus;
    type IntoIter = std::vec::IntoIter<MaxPlus>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.into_iter()
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector")?;
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Vector::epsilon(3).is_all_epsilon());
        assert_eq!(Vector::e(2).as_slice(), &[MaxPlus::E, MaxPlus::E]);
        assert_eq!(Vector::from_finite(&[1, 2]).dim(), 2);
        assert!(Vector::epsilon(0).is_empty());
    }

    #[test]
    fn oplus_elementwise() {
        let a = Vector::from_finite(&[1, 9]);
        let b = Vector::from_finite(&[5, 2]);
        assert_eq!(a.oplus(&b), Vector::from_finite(&[5, 9]));
        let mut c = a.clone();
        c.oplus_assign(&b);
        assert_eq!(c, Vector::from_finite(&[5, 9]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn oplus_checks_dims() {
        let _ = Vector::epsilon(2).oplus(&Vector::epsilon(3));
    }

    #[test]
    fn scalar_scaling_shifts() {
        let a = Vector::from_finite(&[1, 2]);
        assert_eq!(
            a.otimes_scalar(MaxPlus::new(10)),
            Vector::from_finite(&[11, 12])
        );
        assert!(a.otimes_scalar(MaxPlus::EPSILON).is_all_epsilon());
    }

    #[test]
    fn max_element_and_empty() {
        assert_eq!(
            Vector::from_finite(&[3, 8, 1]).max_element(),
            MaxPlus::new(8)
        );
        assert_eq!(Vector::epsilon(0).max_element(), MaxPlus::EPSILON);
    }

    #[test]
    fn indexing_and_iter() {
        let mut v = Vector::from_finite(&[4, 5]);
        v[0] = MaxPlus::new(6);
        assert_eq!(v[0], MaxPlus::new(6));
        assert_eq!(v.get(9), None);
        let collected: Vector = v.iter().copied().collect();
        assert_eq!(collected, v);
    }

    #[test]
    fn display() {
        let v = Vector::new(vec![MaxPlus::new(1), MaxPlus::EPSILON]);
        assert_eq!(v.to_string(), "[1, ε]");
    }
}
