//! Spectral theory of max-plus matrices: eigenvectors and transients.
//!
//! For an irreducible matrix `A`, max-plus spectral theory (Baccelli et
//! al. [15] ch. 3; Heidergott et al. [16] ch. 4) gives a unique eigenvalue
//! `λ` — the maximum cycle mean — with eigenvectors satisfying
//! `A ⊗ v = λ ⊗ v`: a steady regime in which every component advances by
//! exactly `λ` per iteration. The eigenvector fixes the *phases* — the
//! relative offsets at which each evolution instant settles inside the
//! steady-state period — and the transient theorem guarantees every
//! trajectory enters the periodic regime `x(k + c) = (c·λ) ⊗ x(k)` after a
//! finite number of steps.

use crate::{max_cycle_mean, star, CycleMean, Matrix, MaxPlus, Vector};

/// An eigenpair of a max-plus matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EigenPair {
    /// The eigenvalue (maximum cycle mean).
    pub value: CycleMean,
    /// An eigenvector: `A ⊗ v = λ ⊗ v` (for rational `λ = p/q`, the exact
    /// statement is `A^⊗q ⊗ v = p ⊗ v`).
    pub vector: Vector,
}

/// Computes an eigenpair of `a`.
///
/// Uses the critical-graph construction: normalize the (denominator-scaled)
/// matrix by its eigenvalue, take the Kleene star, and return the column of
/// a critical node. Returns `None` when `a` has no cycle (no eigenvalue) or
/// the critical column is not finite everywhere (reducible matrices whose
/// critical class does not reach every node — callers can restrict to the
/// reachable part).
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Examples
///
/// ```
/// use evolve_maxplus::{eigenpair, Matrix, MaxPlus};
///
/// // A two-node loop: eigenvalue (3+1)/2 = 2.
/// let mut a = Matrix::epsilon(2, 2);
/// a[(1, 0)] = MaxPlus::new(3);
/// a[(0, 1)] = MaxPlus::new(1);
/// let pair = eigenpair(&a).expect("irreducible");
/// assert_eq!(pair.value.as_f64(), 2.0);
/// ```
pub fn eigenpair(a: &Matrix) -> Option<EigenPair> {
    assert!(a.is_square(), "eigenpair requires a square matrix");
    let n = a.rows();
    let lambda = max_cycle_mean(a)?;
    let (p, q) = (lambda.numerator(), lambda.denominator() as i64);

    // Scale by q and subtract p from every finite entry: the scaled matrix
    // B = q·A − p has maximum cycle mean 0, so B* converges.
    let mut b = Matrix::epsilon(n, n);
    for (i, j, w) in a.finite_entries() {
        let scaled = w.finite().expect("finite entry") * q - p;
        b[(i, j)] = MaxPlus::new(scaled);
    }
    let b_star = star(&b).ok()?;
    let b_plus = b.otimes(&b_star);

    // A critical node lies on a zero-mean cycle of B: diagonal e in B⁺.
    let critical = (0..n).find(|&i| b_plus[(i, i)] == MaxPlus::E)?;
    let vector: Vector = (0..n).map(|i| b_plus[(i, critical)]).collect();
    if vector.iter().any(|e| e.is_epsilon()) {
        return None;
    }
    // The eigenvector of B is also the (generalized) eigenvector of A.
    Some(EigenPair {
        value: lambda,
        vector,
    })
}

/// The transient behaviour of the autonomous recurrence
/// `x(k+1) = A ⊗ x(k)` from `x0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transient {
    /// First iteration from which the trajectory is periodic.
    pub length: u64,
    /// Cyclicity `c`: the period of the regime `x(k + c) = (c·λ) ⊗ x(k)`.
    pub cyclicity: u64,
    /// Total growth over one period (`c·λ`).
    pub growth_per_period: i64,
}

/// Detects when the trajectory of `x(k+1) = A ⊗ x(k)` becomes periodic.
///
/// Returns `None` if periodicity is not reached within `max_steps` (e.g.
/// a trajectory that dies out to `ε` or an extremely long transient).
///
/// # Panics
///
/// Panics if `a` is not square or `x0.dim() != a.rows()`.
pub fn transient(a: &Matrix, x0: &Vector, max_steps: u64) -> Option<Transient> {
    assert!(a.is_square(), "transient requires a square matrix");
    assert_eq!(a.rows(), x0.dim(), "state dimension mismatch");
    // Store normalized trajectories: x(k) − x(k)[anchor], keyed for reuse.
    let mut history: Vec<(Vec<i64>, i64)> = Vec::new();
    let normalize = |x: &Vector| -> Option<(Vec<i64>, i64)> {
        let anchor = x.iter().find_map(|e| e.finite())?;
        let profile = x
            .iter()
            .map(|e| e.finite().map(|v| v - anchor).unwrap_or(i64::MIN))
            .collect();
        Some((profile, anchor))
    };
    let mut x = x0.clone();
    for k in 0..=max_steps {
        let (profile, anchor) = normalize(&x)?;
        if let Some(start) = history.iter().position(|(p, _)| *p == profile) {
            let cyclicity = k - start as u64;
            return Some(Transient {
                length: start as u64,
                cyclicity,
                growth_per_period: anchor - history[start].1,
            });
        }
        history.push((profile, anchor));
        x = a.otimes_vec(&x);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cycle() -> Matrix {
        let mut a = Matrix::epsilon(2, 2);
        a[(1, 0)] = MaxPlus::new(3);
        a[(0, 1)] = MaxPlus::new(1);
        a
    }

    #[test]
    fn eigenpair_satisfies_the_eigen_equation() {
        let a = two_cycle();
        let pair = eigenpair(&a).unwrap();
        // λ = 2 with denominator 2 → verify A² ⊗ v = 4 ⊗ v.
        let q = pair.value.denominator() as u32;
        let p = pair.value.numerator();
        let aq = a.otimes_pow(q);
        let lhs = aq.otimes_vec(&pair.vector);
        let rhs = pair.vector.otimes_scalar(MaxPlus::new(p));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn integer_eigenvalue_direct_equation() {
        // Self-loop of weight 5 feeding a chain: λ = 5, v finite.
        let mut a = Matrix::epsilon(3, 3);
        a[(0, 0)] = MaxPlus::new(5);
        a[(1, 0)] = MaxPlus::new(2);
        a[(2, 1)] = MaxPlus::new(1);
        let pair = eigenpair(&a).unwrap();
        assert_eq!(pair.value, CycleMean::new(5, 1));
        let lhs = a.otimes_vec(&pair.vector);
        let rhs = pair.vector.otimes_scalar(MaxPlus::new(5));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn acyclic_has_no_eigenpair() {
        let mut a = Matrix::epsilon(2, 2);
        a[(1, 0)] = MaxPlus::new(7);
        assert_eq!(eigenpair(&a), None);
    }

    #[test]
    fn transient_of_eigenvector_is_zero() {
        let a = two_cycle();
        let pair = eigenpair(&a).unwrap();
        let t = transient(&a, &pair.vector, 100).unwrap();
        assert_eq!(t.length, 0);
        // λ = 2 = 4/2: cyclicity 2, growth 4 (or cyclicity 1 if symmetric).
        assert_eq!(
            t.growth_per_period as f64,
            pair.value.as_f64() * t.cyclicity as f64
        );
    }

    #[test]
    fn transient_from_arbitrary_start() {
        let a = two_cycle();
        let x0 = Vector::from_finite(&[100, 0]);
        let t = transient(&a, &x0, 1_000).unwrap();
        // Eventually periodic with growth 2 per step on average.
        assert!(t.length <= 60, "transient {t:?}");
        assert_eq!(
            t.growth_per_period,
            (t.cyclicity as f64 * 2.0) as i64,
            "{t:?}"
        );
    }

    #[test]
    fn transient_detects_longer_cyclicity() {
        // Two disjoint cycles of equal mean but different lengths create
        // cyclicity > 1 when coupled: 0↔1 (mean 2) and 2→3→4→2 (mean 2).
        let mut a = Matrix::epsilon(5, 5);
        a[(1, 0)] = MaxPlus::new(2);
        a[(0, 1)] = MaxPlus::new(2);
        a[(3, 2)] = MaxPlus::new(2);
        a[(4, 3)] = MaxPlus::new(2);
        a[(2, 4)] = MaxPlus::new(2);
        let x0 = Vector::from_finite(&[0, 5, 1, 0, 3]);
        let t = transient(&a, &x0, 1_000).unwrap();
        assert!(t.cyclicity >= 1);
        assert_eq!(t.growth_per_period, 2 * t.cyclicity as i64);
    }

    #[test]
    fn dead_trajectory_returns_none() {
        // Nilpotent matrix: the trajectory reaches all-ε and dies.
        let mut a = Matrix::epsilon(2, 2);
        a[(1, 0)] = MaxPlus::new(1);
        let x0 = Vector::new(vec![MaxPlus::new(0), MaxPlus::EPSILON]);
        // After two steps everything is ε: normalize fails → None.
        assert_eq!(transient(&a, &x0, 10), None);
    }
}
