//! Residuation: the lattice-theoretic "division" of (max,+) algebra.
//!
//! Because `⊗` distributes over the complete `⊕`-semilattice, it admits a
//! residual: `a ∖ c = max{ x : a ⊗ x ≤ c }` — scalar subtraction `c − a`
//! with `⊤/⊥` conventions. Lifted to matrices, the left residual
//! `A ∖ c = max{ x : A ⊗ x ≤ c }` computes **latest schedules**: the
//! latest instant vector `x` such that every instant of `A ⊗ x` still
//! meets the deadline vector `c` (Baccelli et al. [15] §4.4.4). This is the
//! backward counterpart of the forward evolution equations — given output
//! deadlines, when may the inputs arrive at the latest?

use crate::{Matrix, MaxPlus, Vector};

/// Scalar left residual `a ∖ c = max{ x : a ⊗ x ≤ c }`.
///
/// Conventions: if `a = ε`, any `x` works — the result is unbounded and we
/// return `None` (top); if `c = ε` and `a` finite, only `x = ε` works.
#[inline]
pub fn residual(a: MaxPlus, c: MaxPlus) -> Option<MaxPlus> {
    match (a.finite(), c.finite()) {
        (None, _) => None, // unconstrained
        (Some(_), None) => Some(MaxPlus::EPSILON),
        (Some(a), Some(c)) => Some(MaxPlus::new((c - a).clamp(i64::MIN + 1, i64::MAX - 1))),
    }
}

/// Left matrix residual `A ∖ c`: the greatest `x` with `A ⊗ x ≤ c`.
///
/// Component-wise: `x_j = min_i (c_i − A_ij)` over the rows where `A_ij` is
/// finite; a column with no finite entry is unconstrained and saturates to
/// [`MaxPlus::MAX`].
///
/// # Panics
///
/// Panics if `a.rows() != c.dim()`.
///
/// # Examples
///
/// ```
/// use evolve_maxplus::{residual_vec, Matrix, MaxPlus, Vector};
///
/// // One server: y = 5 ⊗ x must finish by 30 → x at latest 25.
/// let mut a = Matrix::epsilon(1, 1);
/// a[(0, 0)] = MaxPlus::new(5);
/// let c = Vector::from_finite(&[30]);
/// let x = residual_vec(&a, &c);
/// assert_eq!(x[0], MaxPlus::new(25));
/// ```
pub fn residual_vec(a: &Matrix, c: &Vector) -> Vector {
    assert_eq!(a.rows(), c.dim(), "deadline dimension mismatch");
    let mut x = Vector::new(vec![MaxPlus::MAX; a.cols()]);
    for (i, j, w) in a.finite_entries() {
        if let Some(r) = residual(w, c[i]) {
            if r < x[j] {
                x[j] = r;
            }
        }
    }
    x
}

/// Verifies the Galois-connection inequalities of a residual pair:
/// `A ⊗ (A ∖ c) ≤ c` and `x ≤ A ∖ (A ⊗ x)`.
///
/// Mostly useful in tests; returns `true` when both laws hold for the given
/// instances.
pub fn galois_laws_hold(a: &Matrix, c: &Vector, x: &Vector) -> bool {
    let back = a.otimes_vec(&residual_vec(a, c));
    let le = |u: &Vector, v: &Vector| u.iter().zip(v.iter()).all(|(p, q)| p <= q);
    let forward = residual_vec(a, &a.otimes_vec(x));
    le(&back, c) && le(x, &forward)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_residual() {
        assert_eq!(
            residual(MaxPlus::new(5), MaxPlus::new(30)),
            Some(MaxPlus::new(25))
        );
        assert_eq!(residual(MaxPlus::EPSILON, MaxPlus::new(3)), None);
        assert_eq!(
            residual(MaxPlus::new(5), MaxPlus::EPSILON),
            Some(MaxPlus::EPSILON)
        );
    }

    #[test]
    fn vector_residual_takes_the_min_over_rows() {
        // x feeds two deadlines through different lags: the tighter wins.
        let mut a = Matrix::epsilon(2, 1);
        a[(0, 0)] = MaxPlus::new(10);
        a[(1, 0)] = MaxPlus::new(3);
        let c = Vector::from_finite(&[50, 20]);
        let x = residual_vec(&a, &c);
        // min(50−10, 20−3) = 17.
        assert_eq!(x[0], MaxPlus::new(17));
    }

    #[test]
    fn unconstrained_column_saturates() {
        let a = Matrix::epsilon(1, 2); // column 1 has no constraint
        let c = Vector::from_finite(&[5]);
        let x = residual_vec(&a, &c);
        assert_eq!(x[0], MaxPlus::MAX);
        assert_eq!(x[1], MaxPlus::MAX);
    }

    #[test]
    fn residual_is_greatest_feasible() {
        let mut a = Matrix::epsilon(2, 2);
        a[(0, 0)] = MaxPlus::new(4);
        a[(0, 1)] = MaxPlus::new(1);
        a[(1, 1)] = MaxPlus::new(7);
        let c = Vector::from_finite(&[40, 33]);
        let x = residual_vec(&a, &c);
        // Feasible: A ⊗ x ≤ c.
        let y = a.otimes_vec(&x);
        assert!(y.iter().zip(c.iter()).all(|(p, q)| p <= q));
        // Greatest: bumping any component by 1 violates a deadline.
        for j in 0..2 {
            let mut bumped = x.clone();
            bumped[j] = MaxPlus::new(bumped[j].finite().unwrap() + 1);
            let y = a.otimes_vec(&bumped);
            assert!(
                y.iter().zip(c.iter()).any(|(p, q)| p > q),
                "component {j} not maximal"
            );
        }
    }

    #[test]
    fn galois_laws() {
        let mut a = Matrix::epsilon(2, 2);
        a[(0, 0)] = MaxPlus::new(4);
        a[(1, 0)] = MaxPlus::new(9);
        a[(1, 1)] = MaxPlus::new(2);
        let c = Vector::from_finite(&[10, 20]);
        let x = Vector::from_finite(&[1, 2]);
        assert!(galois_laws_hold(&a, &c, &x));
    }
}
