//! (max,+) algebra for describing evolution instants of discrete-event
//! systems.
//!
//! This crate is the algebraic substrate of the `evolve` workspace, which
//! reproduces *"A Dynamic Computation Method for Fast and Accurate
//! Performance Evaluation of Multi-Core Architectures"* (Le Nours, Postula,
//! Bergmann — DATE 2014). The paper describes synchronization instants of
//! architecture performance models with two operators (Section III.B):
//!
//! * `⊗` (**addition**) — a time lag by a duration, and
//! * `⊕` (**max**) — the effect of synchronization among processes,
//!
//! and captures model evolution by linear recurrences over the semiring
//! `(ℝ ∪ {−∞}, max, +)` (the paper's eqs. (1)–(10)).
//!
//! # Contents
//!
//! * [`MaxPlus`] — the scalar semiring with `ε = −∞` and `e = 0`.
//! * [`Vector`], [`Matrix`] — dense linear algebra over the semiring.
//! * [`star`] / [`solve_implicit`] — Kleene star `A*` and the least solution
//!   of the implicit equation `x = A ⊗ x ⊕ b` (used to make eq. (7) explicit).
//! * [`LinearSystem`] — the general recurrence of eqs. (9)–(10) with history,
//!   stepped iteration by iteration.
//! * [`max_cycle_mean`] — Karp's algorithm: the system eigenvalue /
//!   steady-state cycle time.
//!
//! # Example: the paper's eq. (2)
//!
//! `xM2(k) = xM1(k) ⊗ Ti1(k) ⊕ xM5(k−1)` — "data can be produced through M2
//! only after a duration `Ti1` once data was received through M1, and not
//! before the previous consumer iteration finished":
//!
//! ```
//! use evolve_maxplus::MaxPlus;
//!
//! let x_m1_k = MaxPlus::new(100); // instant of this iteration's M1 exchange
//! let t_i1_k = MaxPlus::new(25); // execution duration of F1
//! let x_m5_prev = MaxPlus::new(110); // previous iteration's M5 exchange
//!
//! let x_m2_k = x_m1_k.otimes(t_i1_k).oplus(x_m5_prev);
//! assert_eq!(x_m2_k, MaxPlus::new(125));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod karp;
mod matrix;
mod residuation;
mod scalar;
mod spectral;
mod star;
mod system;
mod vector;

pub use karp::{max_cycle_mean, CycleMean};
pub use residuation::{galois_laws_hold, residual, residual_vec};
pub use spectral::{eigenpair, transient, EigenPair, Transient};
pub use matrix::Matrix;
pub use scalar::MaxPlus;
pub use star::{solve_implicit, star, PositiveCycleError};
pub use system::{LinearSystem, LinearSystemBuilder, SystemError};
pub use vector::Vector;
