//! Differential property test: Karp's max-cycle-mean algorithm against the
//! spectral power iteration, on random strongly connected matrices.
//!
//! For an irreducible (max,+) matrix the autonomous recurrence
//! `x(k+1) = A ⊗ x(k)` enters a periodic regime
//! `x(k + c) = (c·λ) ⊗ x(k)`; the growth per period over the cyclicity
//! must equal the maximum cycle mean *exactly*, as a rational. The two
//! implementations share no code — Karp runs dynamic programming over walk
//! lengths, the power iteration detects a repeated normalized profile — so
//! agreement pins both down. The fast-forward oracle
//! (`evolve_core::predict_periodic_regime`) composes exactly these two
//! results.

use evolve_maxplus::{max_cycle_mean, transient, CycleMean, Matrix, MaxPlus, Vector};
use proptest::prelude::*;

/// A strongly connected matrix: a Hamiltonian cycle `i → i+1 (mod n)` is
/// always present, plus random extra finite entries. Small weights keep
/// power-iteration transients short.
#[derive(Debug, Clone)]
struct StronglyConnected {
    n: usize,
    cycle: Vec<i64>,
    extra: Vec<(usize, usize, i64)>,
}

fn strongly_connected() -> impl Strategy<Value = StronglyConnected> {
    (2usize..=5)
        .prop_flat_map(|n| {
            let cycle = proptest::collection::vec(0i64..8, n);
            let extra = proptest::collection::vec((0..n, 0..n, 0i64..8), 0..=2 * n);
            (Just(n), cycle, extra)
        })
        .prop_map(|(n, cycle, extra)| StronglyConnected { n, cycle, extra })
}

fn build(spec: &StronglyConnected) -> Matrix {
    let mut m = Matrix::epsilon(spec.n, spec.n);
    for (i, &w) in spec.cycle.iter().enumerate() {
        m[((i + 1) % spec.n, i)] = MaxPlus::new(w);
    }
    for &(src, dst, w) in &spec.extra {
        m[(dst, src)] = m[(dst, src)].oplus(MaxPlus::new(w));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn karp_agrees_with_the_spectral_transient(spec in strongly_connected()) {
        let a = build(&spec);
        let lambda = max_cycle_mean(&a).expect("the Hamiltonian cycle guarantees a cycle");
        let t = transient(&a, &Vector::e(a.rows()), 10_000);
        // Irreducible matrices always reach the periodic regime; the step
        // budget is generous for these sizes, but stay a prop_assume so a
        // budget miss reads as "not covered", never as a false failure.
        prop_assume!(t.is_some());
        let t = t.unwrap();
        prop_assert!(t.cyclicity >= 1);
        prop_assert_eq!(
            CycleMean::new(t.growth_per_period, t.cyclicity),
            lambda,
            "spectral {}/{} vs Karp {}/{}",
            t.growth_per_period,
            t.cyclicity,
            lambda.numerator(),
            lambda.denominator()
        );
    }

    /// The eigenvalue is invariant under uniform (⊗-scalar) shifts of the
    /// matrix: adding `s` to every finite entry adds `s` to the mean.
    #[test]
    fn cycle_mean_shifts_with_the_matrix(spec in strongly_connected(), s in 0i64..50) {
        let a = build(&spec);
        let mut shifted = Matrix::epsilon(a.rows(), a.cols());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                shifted[(r, c)] = a[(r, c)].otimes(MaxPlus::new(s));
            }
        }
        let base = max_cycle_mean(&a).expect("cyclic");
        let moved = max_cycle_mean(&shifted).expect("cyclic");
        let expect = CycleMean::new(
            base.numerator() + s * base.denominator() as i64,
            base.denominator(),
        );
        prop_assert_eq!(moved, expect);
    }
}
