//! Property-based tests of the (max,+) semiring laws and derived structures.

use evolve_maxplus::{max_cycle_mean, solve_implicit, star, Matrix, MaxPlus, Vector};
use proptest::prelude::*;

/// Bounded scalars so that `⊗` chains never saturate during tests.
fn scalar() -> impl Strategy<Value = MaxPlus> {
    prop_oneof![
        9 => (-1_000_000i64..1_000_000).prop_map(MaxPlus::new),
        1 => Just(MaxPlus::EPSILON),
    ]
}

fn vector(dim: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(scalar(), dim).prop_map(Vector::new)
}

fn matrix(dim: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(scalar(), dim * dim).prop_map(move |elems| {
        let mut m = Matrix::epsilon(dim, dim);
        for (idx, e) in elems.into_iter().enumerate() {
            m[(idx / dim, idx % dim)] = e;
        }
        m
    })
}

/// Matrices with only non-positive finite entries: every cycle weight is
/// ≤ 0, the boundedness condition under which `A*` converges.
fn bounded_matrix(dim: usize) -> impl Strategy<Value = Matrix> {
    let nonpositive = prop_oneof![
        4 => (-1_000i64..=0).prop_map(MaxPlus::new),
        6 => Just(MaxPlus::EPSILON),
    ];
    proptest::collection::vec(nonpositive, dim * dim).prop_map(move |elems| {
        let mut m = Matrix::epsilon(dim, dim);
        for (idx, e) in elems.into_iter().enumerate() {
            m[(idx / dim, idx % dim)] = e;
        }
        m
    })
}

/// Strictly lower-triangular matrices: always acyclic, so `A*` converges.
fn acyclic_matrix(dim: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(scalar(), dim * dim).prop_map(move |elems| {
        let mut m = Matrix::epsilon(dim, dim);
        for (idx, e) in elems.into_iter().enumerate() {
            let (r, c) = (idx / dim, idx % dim);
            if r > c {
                m[(r, c)] = e;
            }
        }
        m
    })
}

proptest! {
    #[test]
    fn oplus_commutative(a in scalar(), b in scalar()) {
        prop_assert_eq!(a.oplus(b), b.oplus(a));
    }

    #[test]
    fn oplus_associative(a in scalar(), b in scalar(), c in scalar()) {
        prop_assert_eq!(a.oplus(b).oplus(c), a.oplus(b.oplus(c)));
    }

    #[test]
    fn oplus_idempotent(a in scalar()) {
        prop_assert_eq!(a.oplus(a), a);
    }

    #[test]
    fn otimes_commutative(a in scalar(), b in scalar()) {
        prop_assert_eq!(a.otimes(b), b.otimes(a));
    }

    #[test]
    fn otimes_associative(a in scalar(), b in scalar(), c in scalar()) {
        prop_assert_eq!(a.otimes(b).otimes(c), a.otimes(b.otimes(c)));
    }

    #[test]
    fn otimes_distributes_over_oplus(a in scalar(), b in scalar(), c in scalar()) {
        prop_assert_eq!(a.otimes(b.oplus(c)), a.otimes(b).oplus(a.otimes(c)));
    }

    #[test]
    fn identities(a in scalar()) {
        prop_assert_eq!(a.oplus(MaxPlus::EPSILON), a);
        prop_assert_eq!(a.otimes(MaxPlus::E), a);
        prop_assert_eq!(a.otimes(MaxPlus::EPSILON), MaxPlus::EPSILON);
    }

    #[test]
    fn oplus_is_order_join(a in scalar(), b in scalar()) {
        let j = a.oplus(b);
        prop_assert!(j >= a && j >= b);
        prop_assert!(j == a || j == b);
    }

    #[test]
    fn matrix_mul_associative(a in matrix(3), b in matrix(3), c in matrix(3)) {
        prop_assert_eq!(a.otimes(&b).otimes(&c), a.otimes(&b.otimes(&c)));
    }

    #[test]
    fn matrix_mul_distributes(a in matrix(3), b in matrix(3), c in matrix(3)) {
        prop_assert_eq!(
            a.otimes(&b.oplus(&c)),
            a.otimes(&b).oplus(&a.otimes(&c))
        );
    }

    #[test]
    fn matrix_oplus_is_a_join_semilattice(a in matrix(3), b in matrix(3), c in matrix(3)) {
        // ⊕ on matrices: commutative, associative, idempotent (a ⊕ a = a).
        prop_assert_eq!(a.oplus(&b), b.oplus(&a));
        prop_assert_eq!(a.oplus(&b).oplus(&c), a.oplus(&b.oplus(&c)));
        prop_assert_eq!(a.oplus(&a), a.clone());
        prop_assert_eq!(a.oplus(&Matrix::epsilon(3, 3)), a);
    }

    #[test]
    fn matrix_identity_neutral(a in matrix(3)) {
        let e = Matrix::identity(3);
        prop_assert_eq!(a.otimes(&e), a.clone());
        prop_assert_eq!(e.otimes(&a), a);
    }

    #[test]
    fn star_converges_on_bounded_matrices(a in bounded_matrix(4)) {
        // Non-positive entries ⇒ every cycle weight ≤ 0 ⇒ A* exists and
        // satisfies the defining fixed point A* = E ⊕ A ⊗ A*.
        let s = star(&a).expect("bounded matrices have no positive cycle");
        prop_assert_eq!(Matrix::identity(4).oplus(&a.otimes(&s)), s.clone());
        // A* absorbs further ⊕-powers: A* ⊗ A* = A* (Kleene closure).
        prop_assert_eq!(s.otimes(&s), s);
    }

    #[test]
    fn star_solves_implicit_on_bounded(a in bounded_matrix(4), b in vector(4)) {
        // x = A ⊗ x ⊕ b has x = A* ⊗ b as a solution whenever A* exists.
        let x = solve_implicit(&a, &b).expect("bounded matrices converge");
        prop_assert_eq!(a.otimes_vec(&x).oplus(&b), x);
    }

    #[test]
    fn matvec_consistent_with_matmul(a in matrix(3), x in vector(3)) {
        // A ⊗ x as a 3x1 matrix product equals otimes_vec.
        let mut xm = Matrix::epsilon(3, 1);
        for i in 0..3 {
            xm[(i, 0)] = x[i];
        }
        let prod = a.otimes(&xm);
        let v = a.otimes_vec(&x);
        for i in 0..3 {
            prop_assert_eq!(prod[(i, 0)], v[i]);
        }
    }

    #[test]
    fn matvec_monotone(a in matrix(3), x in vector(3), y in vector(3)) {
        // Max-plus maps are monotone: x ≤ y (pointwise) ⇒ Ax ≤ Ay.
        let join = x.oplus(&y);
        let ax = a.otimes_vec(&x);
        let ajoin = a.otimes_vec(&join);
        for i in 0..3 {
            prop_assert!(ax[i] <= ajoin[i]);
        }
    }

    #[test]
    fn star_is_fixed_point_on_acyclic(a in acyclic_matrix(4), b in vector(4)) {
        let x = solve_implicit(&a, &b).expect("acyclic matrices converge");
        // x = A ⊗ x ⊕ b must hold exactly.
        prop_assert_eq!(a.otimes_vec(&x).oplus(&b), x);
    }

    #[test]
    fn star_idempotent_on_acyclic(a in acyclic_matrix(4)) {
        let s = star(&a).expect("acyclic");
        // (A*)* = A* and A* ⊗ A* = A*.
        prop_assert_eq!(star(&s).expect("star of star"), s.clone());
        prop_assert_eq!(s.otimes(&s), s);
    }

    #[test]
    fn star_least_solution(a in acyclic_matrix(3), b in vector(3)) {
        // Any one extra ⊕-relaxation of the fixed point changes nothing.
        let x = solve_implicit(&a, &b).expect("acyclic");
        let relaxed = a.otimes_vec(&x).oplus(&b);
        prop_assert_eq!(relaxed, x);
    }

    #[test]
    fn cycle_mean_bounds_growth(a in matrix(3)) {
        // If a cycle exists, the autonomous growth from the e vector over n
        // steps never exceeds n * mean + constant (weak sanity bound).
        if let Some(mean) = max_cycle_mean(&a) {
            let mut x = Vector::e(3);
            for _ in 0..12 {
                x = a.otimes_vec(&x);
            }
            if let Some(max) = x.max_element().finite() {
                // A length-12 path decomposes into cycles plus a simple path
                // of at most n−1 = 2 arcs: weight ≤ 12·mean + s·(wmax − mean)
                // with s ≤ 2 and wmax the heaviest arc (wmax ≥ mean always).
                let wmax = a
                    .finite_entries()
                    .map(|(_, _, w)| w.finite().expect("finite entry"))
                    .max()
                    .unwrap_or(0);
                let bound = (12.0 * mean.as_f64()).ceil() as i64
                    + 2 * (wmax - mean.as_f64().floor() as i64).max(0)
                    + 1;
                prop_assert!(max <= bound, "max {max} > bound {bound}");
            }
        }
    }
}
