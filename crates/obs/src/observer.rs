//! The engine-side observation interface.
//!
//! Engines hold an `Option<Box<dyn Observer>>`. Detached (the default) the
//! whole telemetry layer is one `is_none` branch per *boundary call* — not
//! per node — which is what keeps the disabled overhead under the 2% gate.
//! Attached, the engine calls [`Observer::on_event`] once per lifecycle
//! event and [`Observer::on_records`] with the execution records produced
//! by each call, including records synthesised by fast-forward template
//! replay, so a streaming observer sees exactly the record sequence a
//! buffering caller would.
//!
//! The trait is sealed: the in-tree sinks ([`TelemetrySink`],
//! [`TraceCollector`], [`NullObserver`]) are the only implementations, so
//! the engine crates can evolve the callback surface without a breaking
//! change.
//!
//! [`TelemetrySink`]: crate::TelemetrySink
//! [`TraceCollector`]: crate::TraceCollector

use std::any::Any;

use evolve_model::ExecRecord;

use crate::event::EngineEvent;

mod sealed {
    /// Seals [`Observer`](super::Observer) to this crate.
    pub trait Sealed {}
}

pub(crate) use sealed::Sealed;

/// A sink for engine lifecycle events and streamed execution records.
///
/// Implemented only inside `evolve-obs` (the trait is sealed). Attach one
/// to an engine, drive the engine, then take it back and downcast with
/// [`downcast`] to read the collected data.
pub trait Observer: Sealed + Send {
    /// One engine lifecycle event.
    fn on_event(&mut self, event: EngineEvent);

    /// Execution records produced by the last boundary call on `lane`
    /// (`0` for scalar engines), in production order.
    fn on_records(&mut self, lane: u32, records: &[ExecRecord]);

    /// Upcast for post-drive downcasting via [`downcast`].
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Recovers a concrete sink from a detached `Box<dyn Observer>`.
///
/// # Panics
///
/// Panics if the observer is not a `T` — attach/detach pairs are local to
/// one driver function, so a mismatch is a programming error.
pub fn downcast<T: Observer + 'static>(observer: Box<dyn Observer>) -> Box<T> {
    observer
        .into_any()
        .downcast::<T>()
        .expect("observer downcast to a type it was not attached as")
}

/// An observer that discards everything.
///
/// Useful for measuring the attached-but-idle cost and as a placeholder in
/// tests; production code should prefer detaching (the `None` branch).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Sealed for NullObserver {}

impl Observer for NullObserver {
    fn on_event(&mut self, _event: EngineEvent) {}

    fn on_records(&mut self, _lane: u32, _records: &[ExecRecord]) {}

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_roundtrips_through_downcast() {
        let mut boxed: Box<dyn Observer> = Box::new(NullObserver);
        boxed.on_event(EngineEvent::Reset);
        boxed.on_records(0, &[]);
        let _null: Box<NullObserver> = downcast(boxed);
    }
}
