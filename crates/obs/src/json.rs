//! Minimal JSON emission for reports and telemetry snapshots.
//!
//! The workspace builds offline (no serde); reports need exactly one
//! direction — Rust values → a JSON document on disk — so this module
//! implements just that: a [`Json`] tree with lossless `u64` tick values
//! and standards-compliant string escaping. It lives in `evolve-obs` (the
//! lowest crate that emits documents: metrics snapshots and Chrome traces)
//! and is re-exported unchanged as `evolve_explore::json` for sweep
//! reports.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, emitted losslessly (tick counts exceed the
    /// contiguous range of `f64`).
    U64(u64),
    /// A finite float, emitted with enough digits to round-trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object([
            ("name", Json::str("sweep \"x\"\n")),
            ("ticks", Json::U64(u64::MAX)),
            ("ratio", Json::F64(2.5)),
            ("flags", Json::Array(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            "{\"name\":\"sweep \\\"x\\\"\\n\",\"ticks\":18446744073709551615,\
             \"ratio\":2.5,\"flags\":[true,null]}"
        );
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }
}
