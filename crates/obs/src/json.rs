//! Minimal JSON emission for reports and telemetry snapshots.
//!
//! The workspace builds offline (no serde); reports need exactly one
//! direction — Rust values → a JSON document on disk — so this module
//! implements just that: a [`Json`] tree with lossless `u64` tick values
//! and standards-compliant string escaping. It lives in `evolve-obs` (the
//! lowest crate that emits documents: metrics snapshots and Chrome traces)
//! and is re-exported unchanged as `evolve_explore::json` for sweep
//! reports.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, emitted losslessly (tick counts exceed the
    /// contiguous range of `f64`).
    U64(u64),
    /// A finite float, emitted with enough digits to round-trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // C0 controls must be escaped per RFC 8259; DEL and the
            // line/paragraph separators are escaped defensively — hostile
            // `Load` model names reach trace output as span/track names,
            // and U+2028/U+2029 break JS-adjacent consumers fed verbatim.
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `true` iff `s` is one syntactically valid JSON document.
///
/// A minimal recursive-descent syntax checker (the workspace is offline
/// and has no JSON parser): used by tests and the serve-bench trace gate
/// to assert that exported documents — which can embed hostile
/// client-supplied names — remain well-formed. Validates syntax only; it
/// does not build a tree.
pub fn parses(s: &str) -> bool {
    let mut p = Checker {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value() && {
        p.skip_ws();
        p.pos == p.bytes.len()
    }
}

struct Checker<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Checker<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        if self.depth > 512 {
            return false;
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn object(&mut self) -> bool {
        self.depth += 1;
        self.pos += 1; // '{'
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.string() {
                return false;
            }
            self.skip_ws();
            if !self.eat(b':') {
                return false;
            }
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            if self.eat(b'}') {
                self.depth -= 1;
                return true;
            }
            if !self.eat(b',') {
                return false;
            }
        }
    }

    fn array(&mut self) -> bool {
        self.depth += 1;
        self.pos += 1; // '['
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            if self.eat(b']') {
                self.depth -= 1;
                return true;
            }
            if !self.eat(b',') {
                return false;
            }
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat(b'"') {
            return false;
        }
        while let Some(b) = self.peek() {
            match b {
                b'"' => {
                    self.pos += 1;
                    return true;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.peek(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return false;
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return false,
                    }
                }
                0x00..=0x1f => return false,
                _ => self.pos += 1,
            }
        }
        false
    }

    fn number(&mut self) -> bool {
        let _ = self.eat(b'-');
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return false; // leading zeros are not JSON numbers
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return false,
        }
        if self.eat(b'.') {
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return false;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return false;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object([
            ("name", Json::str("sweep \"x\"\n")),
            ("ticks", Json::U64(u64::MAX)),
            ("ratio", Json::F64(2.5)),
            ("flags", Json::Array(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            "{\"name\":\"sweep \\\"x\\\"\\n\",\"ticks\":18446744073709551615,\
             \"ratio\":2.5,\"flags\":[true,null]}"
        );
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn hostile_strings_escape_controls_del_and_separators() {
        let doc = Json::str("a\u{1b}b\u{7f}c\u{2028}d\u{2029}e\"f\\g").render();
        assert_eq!(doc, "\"a\\u001bb\\u007fc\\u2028d\\u2029e\\\"f\\\\g\"");
        assert!(parses(&doc));
    }

    #[test]
    fn every_emitted_document_parses() {
        let doc = Json::object([
            ("hostile \u{0}\u{7f} key", Json::str("\u{1}\u{2028}")),
            ("nums", Json::Array(vec![Json::U64(0), Json::F64(-2.5e-3)])),
            ("nested", Json::object([("x", Json::Null)])),
        ]);
        assert!(parses(&doc.render()));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "\"raw \u{1} control\"",
            "{\"a\":1}trailing",
            "01",
            "--1",
            "1.e5",
            "\"bad \\u00zz escape\"",
        ] {
            assert!(!parses(bad), "accepted malformed input {bad:?}");
        }
        for good in ["null", "[\"\\u00ff\", -1.5e+3, {}]", " { \"a\" : [ ] } "] {
            assert!(parses(good), "rejected valid input {good:?}");
        }
    }
}
