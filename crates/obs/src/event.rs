//! Structured engine lifecycle events.
//!
//! The engines emit these through an attached [`Observer`](crate::Observer)
//! at their boundary calls only — one event per input offer, never one per
//! graph node — so an attached observer costs O(boundary events) and a
//! detached engine costs a single branch per call.

/// Which evaluation machinery emitted an event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The reference worklist propagation.
    Worklist,
    /// The compiled levelized-CSR sweep.
    Compiled,
    /// The lockstep multi-lane batched sweep.
    Batched,
    /// The compiled sweep with the intra-graph partitioned parallel path.
    CompiledParallel,
}

impl BackendKind {
    /// Stable lowercase label (Prometheus/JSON value).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Worklist => "worklist",
            BackendKind::Compiled => "compiled",
            BackendKind::Batched => "batched",
            BackendKind::CompiledParallel => "compiled-parallel",
        }
    }
}

/// Why the batching layer sent a scenario lane down the scalar path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EjectReason {
    /// The lane's model runs on the worklist backend.
    Worklist,
    /// The lane's trace offers no tokens.
    EmptyTrace,
    /// The lane was a leftover single lane of its model group.
    SingleLane,
    /// The batched engine rejected the graph shape.
    Unsupported,
    /// The lane's model runs the scalar partitioned backend (intra-graph
    /// workers instead of cross-lane lockstep).
    Partitioned,
}

impl EjectReason {
    /// Stable lowercase label (Prometheus/JSON value).
    pub fn as_str(self) -> &'static str {
        match self {
            EjectReason::Worklist => "worklist",
            EjectReason::EmptyTrace => "empty_trace",
            EjectReason::SingleLane => "single_lane",
            EjectReason::Unsupported => "unsupported",
            EjectReason::Partitioned => "partitioned",
        }
    }
}

/// One engine lifecycle event.
///
/// Fields are plain integers so the event layer stays below the engine
/// crates in the dependency order; `lane` is `0` for scalar engines and
/// the lane index for batched ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineEvent {
    /// An observer was attached to an engine (backend selection record).
    Attached {
        /// The engine's evaluation backend.
        backend: BackendKind,
        /// Node count of the derived graph.
        nodes: u64,
        /// Whether the engine can structurally fast-forward.
        ff_eligible: bool,
    },
    /// One scalar input offer was evaluated (an iteration sweep, or an
    /// O(1) template replay while promoted).
    Offer {
        /// The offer's iteration index.
        k: u64,
        /// Lane index (`0` on scalar engines).
        lane: u32,
        /// `true` when the offer was answered by fast-forward replay.
        replayed: bool,
    },
    /// One lockstep batched call was evaluated across all offering lanes.
    BatchSweep {
        /// The lockstep iteration index.
        k: u64,
        /// Number of lanes that offered in this call.
        lanes_offering: u32,
        /// `true` when the whole call was answered from lane templates.
        replayed: bool,
    },
    /// An output acknowledgment was fed back into the engine.
    OutputAck {
        /// The acknowledged iteration.
        k: u64,
    },
    /// The fast-forward detector promoted to O(1) template replay.
    FfPromoted {
        /// Iteration at which the promotion took effect.
        k: u64,
        /// Lane index (`0` on scalar engines).
        lane: u32,
        /// Detected per-period time growth in ticks.
        growth: u64,
        /// Detected period length in iterations.
        period: u64,
    },
    /// A pattern break demoted the engine back to the full sweep.
    FfDemoted {
        /// Iteration at which the demotion happened.
        k: u64,
        /// Lane index (`0` on scalar engines).
        lane: u32,
    },
    /// The batching layer ejected a scenario lane to the scalar path.
    LaneEjected {
        /// Scenario index of the ejected lane.
        lane: u32,
        /// Why the lane was turned away.
        reason: EjectReason,
    },
    /// A fast-forward extrapolation overflowed `u64` ticks; the offer was
    /// rejected with a typed error and the engine state is unchanged.
    Overflow {
        /// The offending iteration.
        k: u64,
    },
    /// The engine was rewound for a fresh trace ([`reset`]: scenario
    /// boundary under engine reuse).
    ///
    /// [`reset`]: EngineEvent::Reset
    Reset,
}
