//! Streaming observation-time resource metrics with bounded memory.
//!
//! [`TelemetrySink`] is the workhorse [`Observer`]: it folds every streamed
//! [`ExecRecord`] into per-resource accumulators ([`ResourceMetrics`]) and
//! counts lifecycle events ([`EventCounters`]) — no record buffering, so a
//! billion-iteration drive observes in O(resources) memory. Records
//! produced by fast-forward template replay stream through the same path,
//! so the accumulated busy time stays exact under promotion; the analytic
//! alternative (fold the one-period template once, multiply by the period
//! count) is provided by [`PeriodUsage`] and verified against brute force.
//!
//! A finished sink (or several merged shards) freezes into a
//! [`MetricsSnapshot`], exportable as JSON or Prometheus text exposition
//! (see [`crate::export`]).

use std::any::Any;

use evolve_model::ExecRecord;

use crate::event::{BackendKind, EngineEvent};
use crate::json::Json;
use crate::observer::{Observer, Sealed};

/// Number of [`LogHistogram`] buckets: one for zero plus one per power of
/// two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed (power-of-two) histogram of `u64` samples.
///
/// Bucket `0` counts zero samples; bucket `i ≥ 1` counts samples in
/// `[2^(i-1), 2^i)`. Fixed size, so recording is O(1) and merging two
/// histograms is exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Bucket index of `value`.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Bucket index of `value`, for the lock-free atomic twin in
    /// [`crate::flight`].
    pub(crate) fn bucket_index(value: u64) -> usize {
        Self::bucket_of(value)
    }

    /// Reconstructs a histogram from raw parts (the atomic twin's
    /// snapshot path).
    pub(crate) fn from_parts(
        buckets: [u64; HISTOGRAM_BUCKETS],
        count: u64,
        sum: u64,
        max: u64,
    ) -> LogHistogram {
        LogHistogram {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples (used by the analytic period fold).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.max = self.max.max(value);
    }

    /// Adds every bucket of `other` into this histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound, count)` per non-empty bucket. The upper bound of
    /// bucket `i` is `2^i` (exclusive); the last bucket reports
    /// `u64::MAX`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let upper = if i >= 64 { u64::MAX } else { 1u64 << i };
                (upper, *c)
            })
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 < q <= 1.0`); 0 when empty. Power-of-two bucket resolution:
    /// the true quantile lies within 2x of the returned bound, which is
    /// what p50/p95/p99 latency summaries need.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return match i {
                    0 => 0,
                    i if i >= 64 => u64::MAX,
                    i => 1u64 << i,
                };
            }
        }
        self.max
    }

    /// Cumulative `(upper_bound, count ≤ upper_bound)` pairs over non-empty
    /// buckets — the shape Prometheus `le` buckets want.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut cum = 0u64;
        let mut out = Vec::new();
        for (i, c) in self.buckets.iter().enumerate() {
            cum += c;
            if *c > 0 {
                let upper = if i >= 64 { u64::MAX } else { 1u64 << i };
                out.push((upper, cum));
            }
        }
        out
    }
}

/// Streaming per-resource accumulator.
///
/// Maintains the running busy time with a single open frontier interval:
/// records arriving in non-decreasing start order (the engines' production
/// order within one lane) merge exactly, matching
/// [`ResourceTrace::from_records`](evolve_model::ResourceTrace::from_records).
/// A record starting before the frontier is clamped and counted in
/// [`out_of_order`](ResourceMetrics::out_of_order); busy time is exact iff
/// that counter is zero (it then under-approximates, never over-counts).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResourceMetrics {
    /// Busy ticks of already-closed merged intervals.
    closed_busy: u64,
    /// The open merged interval `[start, end)`, if any.
    frontier: Option<(u64, u64)>,
    /// Total abstract operations executed.
    pub ops: u64,
    /// Execution records observed (including zero-width ones).
    pub records: u64,
    /// Records that started before the streaming frontier (clamped).
    pub out_of_order: u64,
    /// Largest end instant observed, in ticks.
    pub horizon_ticks: u64,
    /// Histogram of record durations (ticks).
    pub durations: LogHistogram,
}

impl ResourceMetrics {
    /// Folds one execution record into the accumulator.
    pub fn observe(&mut self, start: u64, end: u64, ops: u64) {
        self.records += 1;
        self.ops += ops;
        self.horizon_ticks = self.horizon_ticks.max(end);
        self.durations.record(end.saturating_sub(start));
        if end <= start {
            return; // zero-width records never contribute busy time
        }
        let (mut s, e) = (start, end);
        if let Some((fs, fe)) = self.frontier {
            if s < fs {
                self.out_of_order += 1;
                s = fs; // clamp: busy time becomes a lower bound
            }
            if s <= fe {
                self.frontier = Some((fs, fe.max(e)));
                return;
            }
            self.closed_busy += fe - fs;
        }
        if s < e {
            self.frontier = Some((s, e));
        }
    }

    /// Closes the open frontier (end of a scenario / time axis).
    pub fn seal(&mut self) {
        if let Some((fs, fe)) = self.frontier.take() {
            self.closed_busy += fe - fs;
        }
    }

    /// Total busy ticks accumulated so far (frontier included).
    pub fn busy_ticks(&self) -> u64 {
        self.closed_busy + self.frontier.map_or(0, |(s, e)| e - s)
    }

    /// Utilization over the observed horizon; 0.0 at a zero horizon.
    pub fn utilization(&self) -> f64 {
        if self.horizon_ticks == 0 {
            0.0
        } else {
            self.busy_ticks() as f64 / self.horizon_ticks as f64
        }
    }

    /// Folds another accumulator (a different scenario / shard) into this
    /// one. Both frontiers are sealed: the time axes are unrelated.
    pub fn merge(&mut self, other: &ResourceMetrics) {
        self.seal();
        let mut other = other.clone();
        other.seal();
        self.closed_busy += other.closed_busy;
        self.ops += other.ops;
        self.records += other.records;
        self.out_of_order += other.out_of_order;
        self.horizon_ticks = self.horizon_ticks.max(other.horizon_ticks);
        self.durations.merge(&other.durations);
    }
}

/// Engine work counters — the obs-side mirror of `EngineStats`
/// (`evolve-core` provides `From<EngineStats>`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Nodes computed across all iterations.
    pub nodes_computed: u64,
    /// Arc-weight evaluations performed.
    pub arcs_evaluated: u64,
    /// Iterations fully computed.
    pub iterations_completed: u64,
    /// Scenario lanes evaluated by batched engines.
    pub lanes_evaluated: u64,
    /// Lockstep batched sweeps performed.
    pub batched_iterations: u64,
}

impl EngineCounters {
    /// Adds `other` into this counter set.
    pub fn merge(&mut self, other: &EngineCounters) {
        self.nodes_computed += other.nodes_computed;
        self.arcs_evaluated += other.arcs_evaluated;
        self.iterations_completed += other.iterations_completed;
        self.lanes_evaluated += other.lanes_evaluated;
        self.batched_iterations += other.batched_iterations;
    }
}

/// Fast-forward counters — the obs-side mirror of `FastForwardStats`
/// minus the regime payload (regimes are listed separately in the
/// snapshot; `evolve-core` provides `From<FastForwardStats>`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FfCounters {
    /// Times a detector promoted to fast-forward replay.
    pub promotions: u64,
    /// Times a pattern break demoted back to the full sweep.
    pub demotions: u64,
    /// Iterations answered by template replay instead of a sweep.
    pub fast_forwarded_iterations: u64,
}

impl FfCounters {
    /// Adds `other` into this counter set.
    pub fn merge(&mut self, other: &FfCounters) {
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.fast_forwarded_iterations += other.fast_forwarded_iterations;
    }
}

/// Batching counters — the obs-side mirror of the sweep layer's
/// `BatchingStats` (`evolve-explore` provides `From<BatchingStats>`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Configured lockstep batch width.
    pub batch_width: u64,
    /// Lockstep batches driven to completion.
    pub batches_formed: u64,
    /// Scenarios evaluated as lanes of a batch.
    pub lanes_batched: u64,
    /// Scenarios evaluated on the scalar path.
    pub lanes_scalar: u64,
    /// Lockstep sweeps executed across all batches.
    pub lockstep_iterations: u64,
    /// Lockstep sweeps dispatched to the lane-chunked fold kernels
    /// (lane stride a multiple of the SIMD chunk).
    pub kernel_chunked_sweeps: u64,
    /// Lockstep sweeps dispatched to the per-element reference kernels
    /// (narrow batches below one chunk).
    pub kernel_scalar_sweeps: u64,
    /// Lanes ejected: model on the worklist backend.
    pub eject_worklist: u64,
    /// Lanes ejected: trace offers no tokens.
    pub eject_empty_trace: u64,
    /// Lanes ejected: leftover single lane of a model group.
    pub eject_single_lane: u64,
    /// Lanes ejected: batched engine rejected the graph shape.
    pub eject_unsupported: u64,
    /// Lanes ejected: model runs the scalar partitioned backend.
    pub eject_partitioned: u64,
}

impl BatchCounters {
    /// Adds `other` into this counter set (widths take the max).
    pub fn merge(&mut self, other: &BatchCounters) {
        self.batch_width = self.batch_width.max(other.batch_width);
        self.batches_formed += other.batches_formed;
        self.lanes_batched += other.lanes_batched;
        self.lanes_scalar += other.lanes_scalar;
        self.lockstep_iterations += other.lockstep_iterations;
        self.kernel_chunked_sweeps += other.kernel_chunked_sweeps;
        self.kernel_scalar_sweeps += other.kernel_scalar_sweeps;
        self.eject_worklist += other.eject_worklist;
        self.eject_empty_trace += other.eject_empty_trace;
        self.eject_single_lane += other.eject_single_lane;
        self.eject_unsupported += other.eject_unsupported;
        self.eject_partitioned += other.eject_partitioned;
    }
}

/// Delta-evaluation counters — the obs-side mirror of the engine's
/// `DeltaStats` plus the sweep layer's chain bookkeeping (`evolve-core`
/// provides `From<DeltaStats>`, `evolve-explore` `From<DeltaSweepStats>`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaCounters {
    /// Base+sibling chains formed by the sweep planner.
    pub chains_formed: u64,
    /// Scenarios evaluated as the fully-swept base of a chain.
    pub lanes_base: u64,
    /// Scenarios evaluated against a base cache.
    pub lanes_delta: u64,
    /// Calls answered by the delta sweep (clean copy or frontier recompute).
    pub calls_delta: u64,
    /// Calls a delta-linked engine evaluated fully (beyond the cached
    /// rows, or after a worklist fallback).
    pub calls_full: u64,
    /// Node instants copied from the base cache without recomputation.
    pub nodes_reused: u64,
    /// Node instants recomputed because an input of the fold changed.
    pub nodes_recomputed: u64,
    /// Recomputed nodes whose instant matched the cache (max-plus
    /// early-out: their downstream dependents stay clean).
    pub nodes_settled: u64,
    /// Delta calls that recomputed zero nodes (the change frontier
    /// collapsed before reaching any instant).
    pub frontier_collapses: u64,
    /// Lanes ejected: the graph has multiple external inputs.
    pub eject_multi_input: u64,
    /// Lanes ejected: the graph has acknowledged outputs.
    pub eject_output_acks: u64,
    /// Lanes ejected: the engine runs the worklist backend.
    pub eject_worklist: u64,
    /// Lanes ejected: the sibling's compiled structure differs from the
    /// base cache.
    pub eject_structure_mismatch: u64,
}

impl DeltaCounters {
    /// Adds `other` into this counter set.
    pub fn merge(&mut self, other: &DeltaCounters) {
        self.chains_formed += other.chains_formed;
        self.lanes_base += other.lanes_base;
        self.lanes_delta += other.lanes_delta;
        self.calls_delta += other.calls_delta;
        self.calls_full += other.calls_full;
        self.nodes_reused += other.nodes_reused;
        self.nodes_recomputed += other.nodes_recomputed;
        self.nodes_settled += other.nodes_settled;
        self.frontier_collapses += other.frontier_collapses;
        self.eject_multi_input += other.eject_multi_input;
        self.eject_output_acks += other.eject_output_acks;
        self.eject_worklist += other.eject_worklist;
        self.eject_structure_mismatch += other.eject_structure_mismatch;
    }
}

/// Partitioned-parallel-evaluation counters — the obs-side mirror of the
/// engine's `PartitionStats` (`evolve-core` provides
/// `From<PartitionStats>`). The plan-shape fields (`partitions`,
/// `planned_barriers`, `frontier_arcs`) are gauges and merge by max; the
/// rest are cumulative and add.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionCounters {
    /// Iterations evaluated by the partitioned parallel sweep.
    pub parallel_iterations: u64,
    /// Fast-path iterations that ran serially while a partition runtime
    /// was attached (delta hits, graphs under the engagement threshold).
    pub serial_iterations: u64,
    /// Planned partitions (largest plan seen).
    pub partitions: u64,
    /// Levels with a planned barrier (largest plan seen).
    pub planned_barriers: u64,
    /// Cross-partition zero-delay arcs in the plan (largest plan seen).
    pub frontier_arcs: u64,
    /// Spin-barrier crossings executed, summed over workers.
    pub barrier_crossings: u64,
    /// Optimistic cross-partition reads served from the frontier cache.
    pub speculative_reads: u64,
    /// Speculative reads whose cached value turned out stale.
    pub speculation_misses: u64,
    /// Iterations that ran the rollback pass.
    pub rollbacks: u64,
    /// Slots recomputed by rollback change propagation.
    pub slots_recomputed: u64,
}

impl PartitionCounters {
    /// Folds `other` into this counter set (plan gauges take the max).
    pub fn merge(&mut self, other: &PartitionCounters) {
        self.parallel_iterations += other.parallel_iterations;
        self.serial_iterations += other.serial_iterations;
        self.partitions = self.partitions.max(other.partitions);
        self.planned_barriers = self.planned_barriers.max(other.planned_barriers);
        self.frontier_arcs = self.frontier_arcs.max(other.frontier_arcs);
        self.barrier_crossings += other.barrier_crossings;
        self.speculative_reads += other.speculative_reads;
        self.speculation_misses += other.speculation_misses;
        self.rollbacks += other.rollbacks;
        self.slots_recomputed += other.slots_recomputed;
    }
}

/// Counts of observed [`EngineEvent`]s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Observers attached to engines.
    pub attaches: u64,
    /// Scalar input offers evaluated.
    pub offers: u64,
    /// Offers answered by fast-forward replay.
    pub replayed_offers: u64,
    /// Lockstep batched calls evaluated.
    pub batch_sweeps: u64,
    /// Batched calls answered entirely from templates.
    pub replayed_batch_sweeps: u64,
    /// Output acknowledgments fed back.
    pub output_acks: u64,
    /// Fast-forward promotions observed.
    pub promotions: u64,
    /// Fast-forward demotions observed.
    pub demotions: u64,
    /// Lanes ejected to the scalar path.
    pub lane_ejections: u64,
    /// Offers rejected with a tick overflow.
    pub overflows: u64,
    /// Engine resets (scenario boundaries under reuse).
    pub resets: u64,
}

impl EventCounters {
    /// Adds `other` into this counter set.
    pub fn merge(&mut self, other: &EventCounters) {
        self.attaches += other.attaches;
        self.offers += other.offers;
        self.replayed_offers += other.replayed_offers;
        self.batch_sweeps += other.batch_sweeps;
        self.replayed_batch_sweeps += other.replayed_batch_sweeps;
        self.output_acks += other.output_acks;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.lane_ejections += other.lane_ejections;
        self.overflows += other.overflows;
        self.resets += other.resets;
    }

    /// Boundary events: interface instants the equivalent model still
    /// simulates (offers in, acknowledgments out).
    pub fn boundary_events(&self) -> u64 {
        self.offers + self.output_acks
    }
}

/// Serving-layer counters recorded by the `evolve-serve` daemon: request
/// admission, batch formation, and the evaluation path each request lane
/// took. Counted by the shard workers and merged into the daemon's
/// `/metrics` snapshot alongside the engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Client connections accepted.
    pub connections: u64,
    /// Requests admitted into a shard's queue.
    pub requests: u64,
    /// Requests shed with a BUSY response (queue over `max_queue_depth`).
    pub rejected: u64,
    /// Successful evaluation responses written.
    pub responses: u64,
    /// Error responses written (malformed or failing requests).
    pub errors: u64,
    /// Affinity batches dispatched because lanes filled the batch width.
    pub batches_full: u64,
    /// Affinity batches dispatched at the `max_batch_delay` deadline.
    pub batches_deadline: u64,
    /// Request lanes evaluated inside a lockstep batch.
    pub lanes_batched: u64,
    /// Request lanes evaluated on the scalar path (ejected or singleton).
    pub lanes_scalar: u64,
    /// Request lanes evaluated as a delta against a family base cache.
    pub lanes_delta: u64,
}

impl ServeCounters {
    /// Adds `other` into this counter set.
    pub fn merge(&mut self, other: &ServeCounters) {
        self.connections += other.connections;
        self.requests += other.requests;
        self.rejected += other.rejected;
        self.responses += other.responses;
        self.errors += other.errors;
        self.batches_full += other.batches_full;
        self.batches_deadline += other.batches_deadline;
        self.lanes_batched += other.lanes_batched;
        self.lanes_scalar += other.lanes_scalar;
        self.lanes_delta += other.lanes_delta;
    }
}

/// The streaming telemetry observer: counters plus per-lane per-resource
/// accumulators, mergeable across worker shards.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    /// Engine work counters (recorded by the driver after each drive).
    pub engine: EngineCounters,
    /// Fast-forward counters (recorded by the driver after each drive).
    pub ff: FfCounters,
    /// Batching counters (recorded by the sweep layer).
    pub batch: BatchCounters,
    /// Delta-evaluation counters (recorded by the sweep layer).
    pub delta: DeltaCounters,
    /// Partitioned-parallel counters (recorded by the driving layer).
    pub partition: PartitionCounters,
    /// Serving-layer counters (recorded by the serve daemon's shards).
    pub serve: ServeCounters,
    /// Lifecycle event counts.
    pub events: EventCounters,
    /// Detected periodic regimes `(growth, period)`, one per promotion.
    pub regimes: Vec<(u64, u64)>,
    /// Live per-lane accumulators, indexed `[lane][resource]`.
    lanes: Vec<Vec<ResourceMetrics>>,
    /// Aggregate of sealed scenarios and merged shards, by resource.
    folded: Vec<ResourceMetrics>,
    /// Backends this sink has been attached to.
    pub backends: Vec<BackendKind>,
}

impl TelemetrySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds an engine's work counters into the sink (drivers call this
    /// after each drive with `EngineStats::into()`).
    pub fn record_engine(&mut self, counters: EngineCounters) {
        self.engine.merge(&counters);
    }

    /// Folds fast-forward counters into the sink.
    pub fn record_ff(&mut self, counters: FfCounters) {
        self.ff.merge(&counters);
    }

    /// Folds batching counters into the sink.
    pub fn record_batch(&mut self, counters: BatchCounters) {
        self.batch.merge(&counters);
    }

    /// Folds delta-evaluation counters into the sink.
    pub fn record_delta(&mut self, counters: DeltaCounters) {
        self.delta.merge(&counters);
    }

    /// Folds partitioned-parallel counters into the sink.
    pub fn record_partition(&mut self, counters: PartitionCounters) {
        self.partition.merge(&counters);
    }

    /// Folds serving-layer counters into the sink.
    pub fn record_serve(&mut self, counters: ServeCounters) {
        self.serve.merge(&counters);
    }

    /// Seals every live lane into the aggregate (end of a scenario).
    pub fn seal_lanes(&mut self) {
        let lanes = std::mem::take(&mut self.lanes);
        for lane in &lanes {
            for (idx, rm) in lane.iter().enumerate() {
                if rm.records == 0 && rm.durations.count() == 0 {
                    continue;
                }
                Self::resource_slot(&mut self.folded, idx).merge(rm);
            }
        }
    }

    fn resource_slot(v: &mut Vec<ResourceMetrics>, idx: usize) -> &mut ResourceMetrics {
        if v.len() <= idx {
            v.resize(idx + 1, ResourceMetrics::default());
        }
        &mut v[idx]
    }

    /// Folds another shard (a different worker or lane) into this sink.
    pub fn merge(&mut self, mut other: TelemetrySink) {
        other.seal_lanes();
        self.seal_lanes();
        self.engine.merge(&other.engine);
        self.ff.merge(&other.ff);
        self.batch.merge(&other.batch);
        self.delta.merge(&other.delta);
        self.partition.merge(&other.partition);
        self.serve.merge(&other.serve);
        self.events.merge(&other.events);
        self.regimes.extend(other.regimes);
        self.backends.extend(other.backends);
        for (idx, rm) in other.folded.iter().enumerate() {
            Self::resource_slot(&mut self.folded, idx).merge(rm);
        }
    }

    /// Freezes the sink into an exportable snapshot (seals live lanes).
    pub fn snapshot(&mut self) -> MetricsSnapshot {
        self.seal_lanes();
        let resources = self
            .folded
            .iter()
            .enumerate()
            .filter(|(_, rm)| rm.records > 0)
            .map(|(idx, rm)| ResourceSnapshot {
                resource: idx,
                busy_ticks: rm.busy_ticks(),
                ops: rm.ops,
                records: rm.records,
                out_of_order: rm.out_of_order,
                horizon_ticks: rm.horizon_ticks,
                utilization: rm.utilization(),
                durations: rm.durations.clone(),
            })
            .collect();
        MetricsSnapshot {
            engine: self.engine,
            ff: self.ff,
            batch: self.batch,
            delta: self.delta,
            partition: self.partition,
            serve: self.serve,
            events: self.events,
            regimes: self.regimes.clone(),
            resources,
            phases: Vec::new(),
            serve_gauges: None,
        }
    }
}

impl Sealed for TelemetrySink {}

impl Observer for TelemetrySink {
    fn on_event(&mut self, event: EngineEvent) {
        match event {
            EngineEvent::Attached { backend, .. } => {
                self.events.attaches += 1;
                self.backends.push(backend);
            }
            EngineEvent::Offer { replayed, .. } => {
                self.events.offers += 1;
                if replayed {
                    self.events.replayed_offers += 1;
                }
            }
            EngineEvent::BatchSweep { replayed, .. } => {
                self.events.batch_sweeps += 1;
                if replayed {
                    self.events.replayed_batch_sweeps += 1;
                }
            }
            EngineEvent::OutputAck { .. } => self.events.output_acks += 1,
            EngineEvent::FfPromoted { growth, period, .. } => {
                self.events.promotions += 1;
                self.regimes.push((growth, period));
            }
            EngineEvent::FfDemoted { .. } => self.events.demotions += 1,
            EngineEvent::LaneEjected { .. } => self.events.lane_ejections += 1,
            EngineEvent::Overflow { .. } => self.events.overflows += 1,
            EngineEvent::Reset => {
                self.events.resets += 1;
                self.seal_lanes();
            }
        }
    }

    fn on_records(&mut self, lane: u32, records: &[ExecRecord]) {
        let lane = lane as usize;
        if self.lanes.len() <= lane {
            self.lanes.resize_with(lane + 1, Vec::new);
        }
        for r in records {
            let idx = r.resource.index();
            Self::resource_slot(&mut self.lanes[lane], idx).observe(
                r.start.ticks(),
                r.end.ticks(),
                r.ops,
            );
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Frozen per-resource metrics inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceSnapshot {
    /// Resource index.
    pub resource: usize,
    /// Total busy ticks (exact iff `out_of_order == 0`).
    pub busy_ticks: u64,
    /// Total abstract operations.
    pub ops: u64,
    /// Execution records observed.
    pub records: u64,
    /// Records clamped by the streaming frontier.
    pub out_of_order: u64,
    /// Largest end instant observed.
    pub horizon_ticks: u64,
    /// `busy_ticks / horizon_ticks` (0.0 at a zero horizon).
    pub utilization: f64,
    /// Record-duration histogram.
    pub durations: LogHistogram,
}

/// One serving/partition lifecycle phase's latency histogram
/// (nanosecond samples), fed by the flight recorder
/// ([`crate::flight::FlightRecorder::phase_snapshots`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Stable phase name ([`crate::flight::Phase::name`]).
    pub phase: &'static str,
    /// Duration histogram, nanoseconds.
    pub hist: LogHistogram,
}

/// Live serving gauges sampled at scrape time by the daemon's `/metrics`
/// listener (not accumulated per shard, so not part of shard merges).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServeGauges {
    /// Requests currently queued across all shards.
    pub queue_depth: u64,
    /// Live client connections.
    pub connections: u64,
    /// Seconds since the server started.
    pub uptime_seconds: f64,
}

/// An exportable, immutable view of everything a [`TelemetrySink`] (or a
/// merge of shards) collected.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Engine work counters.
    pub engine: EngineCounters,
    /// Fast-forward counters.
    pub ff: FfCounters,
    /// Batching counters.
    pub batch: BatchCounters,
    /// Delta-evaluation counters.
    pub delta: DeltaCounters,
    /// Partitioned-parallel counters.
    pub partition: PartitionCounters,
    /// Serving-layer counters.
    pub serve: ServeCounters,
    /// Lifecycle event counts.
    pub events: EventCounters,
    /// Detected periodic regimes `(growth, period)`.
    pub regimes: Vec<(u64, u64)>,
    /// Per-resource metrics, sorted by resource index.
    pub resources: Vec<ResourceSnapshot>,
    /// Per-phase request-lifecycle latency histograms (flight recorder).
    /// Empty when no recorder is attached.
    pub phases: Vec<PhaseSnapshot>,
    /// Live serving gauges, set by the daemon at scrape time.
    pub serve_gauges: Option<ServeGauges>,
}

impl MetricsSnapshot {
    /// The live event-ratio gauge (paper Table I column 3): kernel events
    /// the equivalent model avoids (internal instants computed
    /// arithmetically, `nodes_computed`) plus the boundary events it still
    /// simulates, over the boundary events. `None` before any boundary
    /// event. Table I maps this ratio to the attainable speed-up when the
    /// per-event dispatch cost dominates.
    pub fn event_ratio(&self) -> Option<f64> {
        let boundary = self.events.boundary_events();
        if boundary == 0 {
            return None;
        }
        Some((self.engine.nodes_computed + boundary) as f64 / boundary as f64)
    }

    /// Total busy ticks across all resources.
    pub fn total_busy_ticks(&self) -> u64 {
        self.resources.iter().map(|r| r.busy_ticks).sum()
    }

    /// Folds another snapshot into this one: counters add, regimes
    /// concatenate, and per-resource metrics merge by resource index
    /// (busy/ops/records add, horizons take the max, utilization is
    /// recomputed over the merged horizon, histograms merge exactly).
    ///
    /// This is the frozen-side counterpart of [`TelemetrySink::merge`],
    /// used where live sinks cannot be handed over — e.g. the serve
    /// daemon's `/metrics` listener folding per-shard published snapshots
    /// into one exposition.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.engine.merge(&other.engine);
        self.ff.merge(&other.ff);
        self.batch.merge(&other.batch);
        self.delta.merge(&other.delta);
        self.partition.merge(&other.partition);
        self.serve.merge(&other.serve);
        self.events.merge(&other.events);
        self.regimes.extend(other.regimes.iter().copied());
        for theirs in &other.resources {
            match self
                .resources
                .iter_mut()
                .find(|r| r.resource == theirs.resource)
            {
                Some(ours) => {
                    ours.busy_ticks += theirs.busy_ticks;
                    ours.ops += theirs.ops;
                    ours.records += theirs.records;
                    ours.out_of_order += theirs.out_of_order;
                    ours.horizon_ticks = ours.horizon_ticks.max(theirs.horizon_ticks);
                    ours.utilization = if ours.horizon_ticks == 0 {
                        0.0
                    } else {
                        ours.busy_ticks as f64 / ours.horizon_ticks as f64
                    };
                    ours.durations.merge(&theirs.durations);
                }
                None => self.resources.push(theirs.clone()),
            }
        }
        self.resources.sort_by_key(|r| r.resource);
        for theirs in &other.phases {
            match self.phases.iter_mut().find(|p| p.phase == theirs.phase) {
                Some(ours) => ours.hist.merge(&theirs.hist),
                None => self.phases.push(theirs.clone()),
            }
        }
        if self.serve_gauges.is_none() {
            self.serve_gauges = other.serve_gauges;
        }
    }

    /// Renders the snapshot as a JSON document (see
    /// `docs/OBSERVABILITY.md` for the schema).
    pub fn to_json(&self) -> Json {
        let histogram_json = |h: &LogHistogram| {
            Json::object([
                ("count", Json::U64(h.count())),
                ("sum", Json::U64(h.sum())),
                ("max", Json::U64(h.max())),
                (
                    "buckets",
                    Json::Array(
                        h.nonzero_buckets()
                            .map(|(le, n)| {
                                Json::object([("le", Json::U64(le)), ("count", Json::U64(n))])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        Json::object([
            (
                "engine",
                Json::object([
                    ("nodes_computed", Json::U64(self.engine.nodes_computed)),
                    ("arcs_evaluated", Json::U64(self.engine.arcs_evaluated)),
                    (
                        "iterations_completed",
                        Json::U64(self.engine.iterations_completed),
                    ),
                    ("lanes_evaluated", Json::U64(self.engine.lanes_evaluated)),
                    (
                        "batched_iterations",
                        Json::U64(self.engine.batched_iterations),
                    ),
                ]),
            ),
            (
                "fast_forward",
                Json::object([
                    ("promotions", Json::U64(self.ff.promotions)),
                    ("demotions", Json::U64(self.ff.demotions)),
                    (
                        "fast_forwarded_iterations",
                        Json::U64(self.ff.fast_forwarded_iterations),
                    ),
                    (
                        "regimes",
                        Json::Array(
                            self.regimes
                                .iter()
                                .map(|(g, p)| {
                                    Json::object([
                                        ("growth", Json::U64(*g)),
                                        ("period", Json::U64(*p)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "batching",
                Json::object([
                    ("batch_width", Json::U64(self.batch.batch_width)),
                    ("batches_formed", Json::U64(self.batch.batches_formed)),
                    ("lanes_batched", Json::U64(self.batch.lanes_batched)),
                    ("lanes_scalar", Json::U64(self.batch.lanes_scalar)),
                    (
                        "lockstep_iterations",
                        Json::U64(self.batch.lockstep_iterations),
                    ),
                    (
                        "kernel_chunked_sweeps",
                        Json::U64(self.batch.kernel_chunked_sweeps),
                    ),
                    (
                        "kernel_scalar_sweeps",
                        Json::U64(self.batch.kernel_scalar_sweeps),
                    ),
                    ("eject_worklist", Json::U64(self.batch.eject_worklist)),
                    ("eject_empty_trace", Json::U64(self.batch.eject_empty_trace)),
                    ("eject_single_lane", Json::U64(self.batch.eject_single_lane)),
                    ("eject_unsupported", Json::U64(self.batch.eject_unsupported)),
                    ("eject_partitioned", Json::U64(self.batch.eject_partitioned)),
                ]),
            ),
            (
                "delta",
                Json::object([
                    ("chains_formed", Json::U64(self.delta.chains_formed)),
                    ("lanes_base", Json::U64(self.delta.lanes_base)),
                    ("lanes_delta", Json::U64(self.delta.lanes_delta)),
                    ("calls_delta", Json::U64(self.delta.calls_delta)),
                    ("calls_full", Json::U64(self.delta.calls_full)),
                    ("nodes_reused", Json::U64(self.delta.nodes_reused)),
                    ("nodes_recomputed", Json::U64(self.delta.nodes_recomputed)),
                    ("nodes_settled", Json::U64(self.delta.nodes_settled)),
                    (
                        "frontier_collapses",
                        Json::U64(self.delta.frontier_collapses),
                    ),
                    ("eject_multi_input", Json::U64(self.delta.eject_multi_input)),
                    ("eject_output_acks", Json::U64(self.delta.eject_output_acks)),
                    ("eject_worklist", Json::U64(self.delta.eject_worklist)),
                    (
                        "eject_structure_mismatch",
                        Json::U64(self.delta.eject_structure_mismatch),
                    ),
                ]),
            ),
            (
                "partition",
                Json::object([
                    (
                        "parallel_iterations",
                        Json::U64(self.partition.parallel_iterations),
                    ),
                    (
                        "serial_iterations",
                        Json::U64(self.partition.serial_iterations),
                    ),
                    ("partitions", Json::U64(self.partition.partitions)),
                    (
                        "planned_barriers",
                        Json::U64(self.partition.planned_barriers),
                    ),
                    ("frontier_arcs", Json::U64(self.partition.frontier_arcs)),
                    (
                        "barrier_crossings",
                        Json::U64(self.partition.barrier_crossings),
                    ),
                    (
                        "speculative_reads",
                        Json::U64(self.partition.speculative_reads),
                    ),
                    (
                        "speculation_misses",
                        Json::U64(self.partition.speculation_misses),
                    ),
                    ("rollbacks", Json::U64(self.partition.rollbacks)),
                    (
                        "slots_recomputed",
                        Json::U64(self.partition.slots_recomputed),
                    ),
                ]),
            ),
            (
                "serve",
                Json::object([
                    ("connections", Json::U64(self.serve.connections)),
                    ("requests", Json::U64(self.serve.requests)),
                    ("rejected", Json::U64(self.serve.rejected)),
                    ("responses", Json::U64(self.serve.responses)),
                    ("errors", Json::U64(self.serve.errors)),
                    ("batches_full", Json::U64(self.serve.batches_full)),
                    ("batches_deadline", Json::U64(self.serve.batches_deadline)),
                    ("lanes_batched", Json::U64(self.serve.lanes_batched)),
                    ("lanes_scalar", Json::U64(self.serve.lanes_scalar)),
                    ("lanes_delta", Json::U64(self.serve.lanes_delta)),
                ]),
            ),
            (
                "events",
                Json::object([
                    ("attaches", Json::U64(self.events.attaches)),
                    ("offers", Json::U64(self.events.offers)),
                    ("replayed_offers", Json::U64(self.events.replayed_offers)),
                    ("batch_sweeps", Json::U64(self.events.batch_sweeps)),
                    (
                        "replayed_batch_sweeps",
                        Json::U64(self.events.replayed_batch_sweeps),
                    ),
                    ("output_acks", Json::U64(self.events.output_acks)),
                    ("promotions", Json::U64(self.events.promotions)),
                    ("demotions", Json::U64(self.events.demotions)),
                    ("lane_ejections", Json::U64(self.events.lane_ejections)),
                    ("overflows", Json::U64(self.events.overflows)),
                    ("resets", Json::U64(self.events.resets)),
                    ("boundary_events", Json::U64(self.events.boundary_events())),
                ]),
            ),
            (
                "event_ratio",
                self.event_ratio().map_or(Json::Null, Json::F64),
            ),
            (
                "serve_phases",
                Json::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::object([
                                ("phase", Json::str(p.phase)),
                                ("count", Json::U64(p.hist.count())),
                                (
                                    "p50_seconds",
                                    Json::F64(p.hist.quantile(0.50) as f64 / 1e9),
                                ),
                                (
                                    "p95_seconds",
                                    Json::F64(p.hist.quantile(0.95) as f64 / 1e9),
                                ),
                                (
                                    "p99_seconds",
                                    Json::F64(p.hist.quantile(0.99) as f64 / 1e9),
                                ),
                                ("mean_seconds", Json::F64(p.hist.mean() / 1e9)),
                                ("max_seconds", Json::F64(p.hist.max() as f64 / 1e9)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "serve_gauges",
                self.serve_gauges.map_or(Json::Null, |g| {
                    Json::object([
                        ("queue_depth", Json::U64(g.queue_depth)),
                        ("connections", Json::U64(g.connections)),
                        ("uptime_seconds", Json::F64(g.uptime_seconds)),
                    ])
                }),
            ),
            (
                "resources",
                Json::Array(
                    self.resources
                        .iter()
                        .map(|r| {
                            Json::object([
                                ("resource", Json::U64(r.resource as u64)),
                                ("busy_ticks", Json::U64(r.busy_ticks)),
                                ("ops", Json::U64(r.ops)),
                                ("records", Json::U64(r.records)),
                                ("out_of_order", Json::U64(r.out_of_order)),
                                ("horizon_ticks", Json::U64(r.horizon_ticks)),
                                ("utilization", Json::F64(r.utilization)),
                                ("durations", histogram_json(&r.durations)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The one-period execution template of a promoted lane, foldable
/// analytically over `m` periods: per-period usage × period count, with
/// the union of time-shifted busy intervals computed exactly without
/// materialising `m` copies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeriodUsage {
    /// Per-resource merged busy intervals of one period, in ticks.
    per_resource: Vec<PeriodResource>,
    /// Ticks the template shifts per period (`growth`).
    pub growth: u64,
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct PeriodResource {
    resource: usize,
    intervals: Vec<(u64, u64)>,
    ops: u64,
    records: u64,
    durations: Vec<u64>,
}

/// The analytic fold of one resource over `m` periods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoldedResource {
    /// Resource index.
    pub resource: usize,
    /// Exact busy ticks of the union of `m` shifted template copies.
    pub busy_ticks: u64,
    /// Total operations (`m ×` per-period ops).
    pub ops: u64,
    /// Total records (`m ×` per-period records).
    pub records: u64,
    /// Duration histogram (`m ×` per-period multiplicities).
    pub durations: LogHistogram,
}

impl PeriodUsage {
    /// Builds the template from one period's execution records and its
    /// detected per-period growth.
    pub fn from_records(records: &[ExecRecord], growth: u64) -> Self {
        let mut per: Vec<PeriodResource> = Vec::new();
        for r in records {
            let idx = r.resource.index();
            let slot = match per.iter_mut().find(|p| p.resource == idx) {
                Some(p) => p,
                None => {
                    per.push(PeriodResource {
                        resource: idx,
                        ..PeriodResource::default()
                    });
                    per.last_mut().expect("just pushed")
                }
            };
            slot.ops += r.ops;
            slot.records += 1;
            slot.durations
                .push(r.end.ticks().saturating_sub(r.start.ticks()));
            if r.start < r.end {
                slot.intervals.push((r.start.ticks(), r.end.ticks()));
            }
        }
        for slot in &mut per {
            slot.intervals = merge_intervals(std::mem::take(&mut slot.intervals));
        }
        per.sort_by_key(|p| p.resource);
        PeriodUsage {
            per_resource: per,
            growth,
        }
    }

    /// Folds the template over `periods` repetitions, each shifted by
    /// [`growth`](PeriodUsage::growth) ticks from the previous one.
    /// Busy ticks are the exact measure of the union of all shifted
    /// copies, computed by materialising only as many copies as can
    /// overlap (the per-copy increment is constant beyond that depth).
    pub fn fold(&self, periods: u64) -> Vec<FoldedResource> {
        self.per_resource
            .iter()
            .map(|p| {
                let mut durations = LogHistogram::default();
                for d in &p.durations {
                    durations.record_n(*d, periods);
                }
                FoldedResource {
                    resource: p.resource,
                    busy_ticks: shifted_union_busy(&p.intervals, self.growth, periods),
                    ops: p.ops * periods,
                    records: p.records * periods,
                    durations,
                }
            })
            .collect()
    }
}

/// Merges `[start, end)` spans into sorted disjoint intervals (the same
/// construction as `ResourceTrace::from_records`).
fn merge_intervals(mut spans: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    spans.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        match out.last_mut() {
            Some((_, last_end)) if s <= *last_end => {
                if e > *last_end {
                    *last_end = e;
                }
            }
            _ => out.push((s, e)),
        }
    }
    out
}

fn busy_of(intervals: &[(u64, u64)]) -> u64 {
    intervals.iter().map(|(s, e)| e - s).sum()
}

fn materialized_union_busy(intervals: &[(u64, u64)], shift: u64, copies: u64) -> u64 {
    let mut all = Vec::with_capacity(intervals.len() * copies as usize);
    for c in 0..copies {
        let off = shift * c;
        all.extend(intervals.iter().map(|(s, e)| (s + off, e + off)));
    }
    busy_of(&merge_intervals(all))
}

/// Exact busy ticks of the union of `m` copies of `intervals`, copy `c`
/// shifted by `c × shift` ticks.
///
/// Beyond the overlap depth `q` (once a copy no longer overlaps copy 0),
/// each additional copy adds a constant number of busy ticks, so the
/// union is evaluated by materialising `min(m, q)` copies and
/// extrapolating: `busy(m) = busy(q) + (m − q) × (busy(q) − busy(q−1))`.
fn shifted_union_busy(intervals: &[(u64, u64)], shift: u64, m: u64) -> u64 {
    if m == 0 || intervals.is_empty() {
        return 0;
    }
    if shift == 0 {
        // all copies coincide
        return busy_of(intervals);
    }
    let span = intervals.last().expect("nonempty").1 - intervals.first().expect("nonempty").0;
    let q = (span / shift + 2).min(m);
    if q == m {
        return materialized_union_busy(intervals, shift, m);
    }
    let busy_q = materialized_union_busy(intervals, shift, q);
    let busy_q1 = materialized_union_busy(intervals, shift, q - 1);
    busy_q + (m - q) * (busy_q - busy_q1)
}

#[cfg(test)]
mod tests {
    use evolve_des::Time;
    use evolve_model::{ExecRecord, FunctionId, ResourceId};
    use proptest::prelude::*;

    use super::*;

    fn rec(resource: usize, start: u64, end: u64, ops: u64) -> ExecRecord {
        ExecRecord {
            resource: ResourceId::from_index(resource),
            function: FunctionId::from_index(0),
            stmt: 0,
            k: 0,
            start: Time::from_ticks(start),
            end: Time::from_ticks(end),
            ops,
        }
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = LogHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.max(), 1024);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(1, 1), (2, 1), (4, 2), (2048, 1)]);
        let cumulative = h.cumulative_buckets();
        assert_eq!(cumulative, vec![(1, 1), (2, 2), (4, 4), (2048, 5)]);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(5);
        b.record(5);
        b.record(100);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = LogHistogram::default();
        direct.record(5);
        direct.record(5);
        direct.record(100);
        assert_eq!(merged, direct);
    }

    #[test]
    fn streaming_busy_matches_merged_intervals_in_order() {
        let mut rm = ResourceMetrics::default();
        rm.observe(0, 10, 5);
        rm.observe(5, 15, 5); // overlaps
        rm.observe(20, 30, 5); // disjoint
        assert_eq!(rm.busy_ticks(), 25);
        assert_eq!(rm.out_of_order, 0);
        assert_eq!(rm.ops, 15);
        assert_eq!(rm.horizon_ticks, 30);
    }

    #[test]
    fn zero_width_records_counted_but_not_busy() {
        let mut rm = ResourceMetrics::default();
        rm.observe(10, 10, 3);
        assert_eq!(rm.busy_ticks(), 0);
        assert_eq!(rm.records, 1);
        assert_eq!(rm.ops, 3);
        assert_eq!(rm.utilization(), 0.0); // horizon 10, busy 0
    }

    #[test]
    fn out_of_order_record_is_clamped_and_counted() {
        let mut rm = ResourceMetrics::default();
        rm.observe(10, 20, 1);
        rm.observe(0, 5, 1); // starts before the frontier
        assert_eq!(rm.out_of_order, 1);
        assert_eq!(rm.busy_ticks(), 10); // lower bound, never over-counts
    }

    #[test]
    fn utilization_zero_horizon_is_zero() {
        let rm = ResourceMetrics::default();
        assert_eq!(rm.utilization(), 0.0);
    }

    #[test]
    fn merge_seals_frontiers_across_scenarios() {
        let mut a = ResourceMetrics::default();
        a.observe(0, 10, 1);
        let mut b = ResourceMetrics::default();
        b.observe(0, 7, 1); // same time axis range, different scenario
        a.merge(&b);
        assert_eq!(a.busy_ticks(), 17);
        assert_eq!(a.records, 2);
    }

    #[test]
    fn sink_streams_records_and_counts_events() {
        let mut sink = TelemetrySink::new();
        sink.on_event(EngineEvent::Attached {
            backend: BackendKind::Compiled,
            nodes: 4,
            ff_eligible: true,
        });
        sink.on_records(0, &[rec(0, 0, 10, 100), rec(1, 2, 6, 50)]);
        sink.on_event(EngineEvent::Offer {
            k: 0,
            lane: 0,
            replayed: false,
        });
        sink.on_event(EngineEvent::OutputAck { k: 0 });
        sink.on_event(EngineEvent::FfPromoted {
            k: 5,
            lane: 0,
            growth: 7,
            period: 2,
        });
        let snap = sink.snapshot();
        assert_eq!(snap.events.offers, 1);
        assert_eq!(snap.events.output_acks, 1);
        assert_eq!(snap.regimes, vec![(7, 2)]);
        assert_eq!(snap.resources.len(), 2);
        assert_eq!(snap.resources[0].busy_ticks, 10);
        assert_eq!(snap.resources[1].busy_ticks, 4);
        assert_eq!(snap.total_busy_ticks(), 14);
    }

    #[test]
    fn sink_reset_seals_time_axis() {
        let mut sink = TelemetrySink::new();
        sink.on_records(0, &[rec(0, 100, 110, 1)]);
        sink.on_event(EngineEvent::Reset);
        // new scenario starts earlier on its own axis: not out of order
        sink.on_records(0, &[rec(0, 0, 10, 1)]);
        let snap = sink.snapshot();
        assert_eq!(snap.resources[0].busy_ticks, 20);
        assert_eq!(snap.resources[0].out_of_order, 0);
    }

    #[test]
    fn sink_lanes_have_independent_frontiers() {
        let mut sink = TelemetrySink::new();
        sink.on_records(0, &[rec(0, 50, 60, 1)]);
        sink.on_records(1, &[rec(0, 0, 10, 1)]); // earlier, different lane
        sink.on_records(0, &[rec(0, 60, 70, 1)]);
        let snap = sink.snapshot();
        assert_eq!(snap.resources[0].busy_ticks, 30);
        assert_eq!(snap.resources[0].out_of_order, 0);
    }

    #[test]
    fn shard_merge_matches_single_sink() {
        let mut a = TelemetrySink::new();
        a.on_records(0, &[rec(0, 0, 10, 5)]);
        a.on_event(EngineEvent::Offer {
            k: 0,
            lane: 0,
            replayed: false,
        });
        let mut b = TelemetrySink::new();
        b.on_records(0, &[rec(0, 0, 20, 7)]);
        b.on_event(EngineEvent::Offer {
            k: 0,
            lane: 0,
            replayed: true,
        });
        a.merge(b);
        let snap = a.snapshot();
        assert_eq!(snap.resources[0].busy_ticks, 30);
        assert_eq!(snap.resources[0].ops, 12);
        assert_eq!(snap.events.offers, 2);
        assert_eq!(snap.events.replayed_offers, 1);
    }

    #[test]
    fn event_ratio_counts_avoided_over_boundary() {
        let mut sink = TelemetrySink::new();
        sink.record_engine(EngineCounters {
            nodes_computed: 98,
            ..EngineCounters::default()
        });
        for k in 0..2 {
            sink.on_event(EngineEvent::Offer {
                k,
                lane: 0,
                replayed: false,
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.event_ratio(), Some(50.0));
        assert_eq!(TelemetrySink::new().snapshot().event_ratio(), None);
    }

    #[test]
    fn snapshot_merge_matches_sink_merge() {
        let mut a = TelemetrySink::new();
        a.on_records(0, &[rec(0, 0, 10, 5)]);
        a.record_serve(ServeCounters {
            requests: 3,
            rejected: 1,
            ..ServeCounters::default()
        });
        let mut b = TelemetrySink::new();
        b.on_records(0, &[rec(0, 0, 20, 7)]);
        b.on_records(0, &[rec(1, 5, 9, 2)]);
        b.record_serve(ServeCounters {
            requests: 4,
            lanes_batched: 4,
            ..ServeCounters::default()
        });

        // Freeze the shards first, then merge the snapshots...
        let mut frozen = a.snapshot();
        frozen.merge(&b.snapshot());
        // ...which must equal merging the live sinks and freezing once.
        a.merge(b);
        let direct = a.snapshot();

        assert_eq!(frozen, direct);
        assert_eq!(frozen.serve.requests, 7);
        assert_eq!(frozen.serve.rejected, 1);
        assert_eq!(frozen.serve.lanes_batched, 4);
        assert_eq!(frozen.resources.len(), 2);
        assert_eq!(frozen.resources[0].busy_ticks, 30);
    }

    #[test]
    fn snapshot_merge_into_empty_is_identity() {
        let mut sink = TelemetrySink::new();
        sink.on_records(0, &[rec(2, 0, 10, 5)]);
        sink.record_serve(ServeCounters {
            responses: 9,
            ..ServeCounters::default()
        });
        let snap = sink.snapshot();
        let mut empty = MetricsSnapshot::default();
        empty.merge(&snap);
        assert_eq!(empty, snap);
    }

    #[test]
    fn snapshot_json_renders() {
        let mut sink = TelemetrySink::new();
        sink.on_records(0, &[rec(0, 0, 10, 100)]);
        let doc = sink.snapshot().to_json().render();
        assert!(doc.contains("\"busy_ticks\":10"));
        assert!(doc.contains("\"event_ratio\":null"));
    }

    #[test]
    fn period_fold_matches_brute_force_small() {
        // One period: busy [0,10) ∪ [15,20), growth 8 → copies overlap.
        let records = [rec(0, 0, 10, 100), rec(0, 15, 20, 50)];
        let usage = PeriodUsage::from_records(&records, 8);
        for m in 1..=50u64 {
            let folded = usage.fold(m);
            let mut all = Vec::new();
            for c in 0..m {
                all.push(rec(0, 8 * c, 10 + 8 * c, 100));
                all.push(rec(0, 15 + 8 * c, 20 + 8 * c, 50));
            }
            let trace = evolve_model::ResourceTrace::from_records(&all, ResourceId::from_index(0));
            assert_eq!(folded[0].busy_ticks, trace.busy_ticks(), "m={m}");
            assert_eq!(folded[0].ops, 150 * m);
            assert_eq!(folded[0].records, 2 * m);
            assert_eq!(folded[0].durations.count(), 2 * m);
        }
    }

    #[test]
    fn period_fold_zero_growth_and_zero_periods() {
        let records = [rec(0, 0, 10, 1)];
        let usage = PeriodUsage::from_records(&records, 0);
        assert_eq!(usage.fold(5)[0].busy_ticks, 10);
        assert_eq!(usage.fold(0)[0].busy_ticks, 0);
    }

    proptest! {
        #[test]
        fn prop_streaming_busy_matches_resource_trace_for_sorted_records(
            mut starts in proptest::collection::vec(0u64..1000, 1..40),
            widths in proptest::collection::vec(0u64..50, 40),
        ) {
            starts.sort_unstable();
            let records: Vec<ExecRecord> = starts
                .iter()
                .zip(widths.iter())
                .map(|(s, w)| rec(0, *s, s + w, 1))
                .collect();
            let mut rm = ResourceMetrics::default();
            for r in &records {
                rm.observe(r.start.ticks(), r.end.ticks(), r.ops);
            }
            let trace =
                evolve_model::ResourceTrace::from_records(&records, ResourceId::from_index(0));
            prop_assert_eq!(rm.out_of_order, 0);
            prop_assert_eq!(rm.busy_ticks(), trace.busy_ticks());
        }

        #[test]
        fn prop_period_fold_matches_brute_force(
            spans in proptest::collection::vec((0u64..200, 1u64..60), 1..8),
            shift in 0u64..250,
            m in 1u64..120,
        ) {
            let records: Vec<ExecRecord> =
                spans.iter().map(|(s, w)| rec(0, *s, s + w, 1)).collect();
            let usage = PeriodUsage::from_records(&records, shift);
            let folded = usage.fold(m);
            let mut all = Vec::new();
            for c in 0..m {
                for (s, w) in &spans {
                    all.push(rec(0, s + shift * c, s + w + shift * c, 1));
                }
            }
            let trace =
                evolve_model::ResourceTrace::from_records(&all, ResourceId::from_index(0));
            prop_assert_eq!(folded[0].busy_ticks, trace.busy_ticks());
        }
    }
}
