//! Chrome trace-event export for Perfetto.
//!
//! [`TraceCollector`] is an [`Observer`] that records two clock domains
//! side by side:
//!
//! - **observation time** (process 1): per-resource busy intervals of the
//!   model under evaluation, on the tick axis (1 tick = 1 ns = 1 µs/1000
//!   in the trace). Raw record intervals are buffered and merged at
//!   export with exactly the `ResourceTrace::from_records` construction,
//!   so the Perfetto tracks equal the post-hoc trace bit for bit — also
//!   on fast-forwarded scenarios, because template replay streams its
//!   records like any other offer.
//! - **host time** (process 2): engine lifecycle instants stamped against
//!   the collector's own monotonic epoch, plus spans pushed by the driver
//!   via [`TraceCollector::push_span`].
//!
//! The export is the Chrome trace-event JSON array format
//! (`{"traceEvents": [...]}`), which Perfetto's UI opens directly.

use std::any::Any;
use std::time::Instant;

use evolve_des::Time;
use evolve_model::ExecRecord;

use crate::event::EngineEvent;
use crate::json::Json;
use crate::observer::{Observer, Sealed};

/// Observation-time process id in the exported trace.
const PID_OBSERVATION: u64 = 1;
/// Host-time process id in the exported trace.
const PID_HOST: u64 = 2;

/// One observation-time track: a `(lane, resource)` pair.
#[derive(Clone, Debug)]
struct Track {
    lane: u32,
    resource: usize,
    /// Raw `[start, end)` intervals in ticks, unmerged.
    raw: Vec<(u64, u64)>,
}

/// A host-time span pushed by the driver.
#[derive(Clone, Debug)]
struct HostSpan {
    name: String,
    start_us: f64,
    end_us: f64,
}

/// A host-time instant derived from an engine event.
#[derive(Clone, Debug)]
struct HostInstant {
    name: String,
    at_us: f64,
}

/// Collects execution records and engine events for Chrome-trace export.
#[derive(Debug)]
pub struct TraceCollector {
    epoch: Instant,
    tracks: Vec<Track>,
    spans: Vec<HostSpan>,
    instants: Vec<HostInstant>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A fresh collector; host timestamps count from now.
    pub fn new() -> Self {
        TraceCollector {
            epoch: Instant::now(),
            tracks: Vec::new(),
            spans: Vec::new(),
            instants: Vec::new(),
        }
    }

    /// Microseconds since the collector's epoch (for
    /// [`push_span`](TraceCollector::push_span) endpoints).
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Adds a named host-time span (e.g. "drive scenario 3").
    pub fn push_span(&mut self, name: impl Into<String>, start_us: f64, end_us: f64) {
        self.spans.push(HostSpan {
            name: name.into(),
            start_us,
            end_us: end_us.max(start_us),
        });
    }

    fn track_slot(&mut self, lane: u32, resource: usize) -> &mut Track {
        if let Some(i) = self
            .tracks
            .iter()
            .position(|t| t.lane == lane && t.resource == resource)
        {
            return &mut self.tracks[i];
        }
        self.tracks.push(Track {
            lane,
            resource,
            raw: Vec::new(),
        });
        self.tracks.last_mut().expect("just pushed")
    }

    /// The merged busy intervals of one `(lane, resource)` track —
    /// constructed exactly like `ResourceTrace::from_records`, so a
    /// conformance test can compare them field for field.
    pub fn merged_intervals(&self, lane: u32, resource: usize) -> Vec<(Time, Time)> {
        let Some(track) = self
            .tracks
            .iter()
            .find(|t| t.lane == lane && t.resource == resource)
        else {
            return Vec::new();
        };
        merge_raw(&track.raw)
            .into_iter()
            .map(|(s, e)| (Time::from_ticks(s), Time::from_ticks(e)))
            .collect()
    }

    /// Lanes and resources with at least one recorded interval.
    pub fn tracks(&self) -> impl Iterator<Item = (u32, usize)> + '_ {
        self.tracks.iter().map(|t| (t.lane, t.resource))
    }

    /// Folds another collector into this one: raw intervals merge by
    /// `(lane, resource)` track, spans and instants concatenate. Both
    /// collectors must share a host-time base (created back to back, or
    /// spans pushed with endpoints from one collector's
    /// [`now_us`](TraceCollector::now_us)); the export is deterministic
    /// under any merge order because [`to_chrome_trace`] orders tracks,
    /// spans, and instants canonically.
    ///
    /// [`to_chrome_trace`]: TraceCollector::to_chrome_trace
    pub fn merge(&mut self, other: TraceCollector) {
        for track in other.tracks {
            self.track_slot(track.lane, track.resource)
                .raw
                .extend(track.raw);
        }
        self.spans.extend(other.spans);
        self.instants.extend(other.instants);
    }

    /// Renders the Chrome trace-event document.
    ///
    /// The output is deterministic for a given set of recorded data
    /// regardless of insertion or [`merge`](TraceCollector::merge)
    /// order: tracks are ordered by `(lane, resource)`, host spans by
    /// `(start, end, name)`, and instants by `(time, name)`.
    pub fn to_chrome_trace(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        events.push(metadata_event(
            "process_name",
            PID_OBSERVATION,
            0,
            "observation time (ticks as \u{00b5}s/1000)",
        ));
        events.push(metadata_event("process_name", PID_HOST, 0, "host time"));
        let mut track_order: Vec<&Track> = self.tracks.iter().collect();
        track_order.sort_by_key(|t| (t.lane, t.resource));
        for (tid, track) in track_order.iter().enumerate() {
            let tid = tid as u64 + 1;
            events.push(metadata_event(
                "thread_name",
                PID_OBSERVATION,
                tid,
                &format!("lane {} / resource {}", track.lane, track.resource),
            ));
            for (s, e) in merge_raw(&track.raw) {
                events.push(Json::object([
                    ("name", Json::str("busy")),
                    ("ph", Json::str("X")),
                    ("pid", Json::U64(PID_OBSERVATION)),
                    ("tid", Json::U64(tid)),
                    ("ts", Json::F64(s as f64 / 1000.0)),
                    ("dur", Json::F64((e - s) as f64 / 1000.0)),
                ]));
            }
        }
        events.push(metadata_event("thread_name", PID_HOST, 1, "engine"));
        let mut span_order: Vec<&HostSpan> = self.spans.iter().collect();
        span_order.sort_by(|a, b| {
            a.start_us
                .total_cmp(&b.start_us)
                .then(a.end_us.total_cmp(&b.end_us))
                .then_with(|| a.name.cmp(&b.name))
        });
        for span in span_order {
            events.push(Json::object([
                ("name", Json::str(span.name.clone())),
                ("ph", Json::str("X")),
                ("pid", Json::U64(PID_HOST)),
                ("tid", Json::U64(1)),
                ("ts", Json::F64(span.start_us)),
                ("dur", Json::F64(span.end_us - span.start_us)),
            ]));
        }
        let mut instant_order: Vec<&HostInstant> = self.instants.iter().collect();
        instant_order
            .sort_by(|a, b| a.at_us.total_cmp(&b.at_us).then_with(|| a.name.cmp(&b.name)));
        for instant in instant_order {
            events.push(Json::object([
                ("name", Json::str(instant.name.clone())),
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("pid", Json::U64(PID_HOST)),
                ("tid", Json::U64(1)),
                ("ts", Json::F64(instant.at_us)),
            ]));
        }
        Json::object([
            ("traceEvents", Json::Array(events)),
            ("displayTimeUnit", Json::str("ns")),
        ])
    }
}

fn metadata_event(name: &str, pid: u64, tid: u64, label: &str) -> Json {
    Json::object([
        ("name", Json::str(name)),
        ("ph", Json::str("M")),
        ("pid", Json::U64(pid)),
        ("tid", Json::U64(tid)),
        (
            "args",
            Json::object([("name", Json::str(label))]),
        ),
    ])
}

/// Sort-and-merge of raw spans, dropping zero-width ones — byte-for-byte
/// the `ResourceTrace::from_records` interval construction.
fn merge_raw(raw: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut spans: Vec<(u64, u64)> = raw.iter().copied().filter(|(s, e)| s < e).collect();
    spans.sort_unstable();
    let mut intervals: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        match intervals.last_mut() {
            Some((_, last_end)) if s <= *last_end => {
                if e > *last_end {
                    *last_end = e;
                }
            }
            _ => intervals.push((s, e)),
        }
    }
    intervals
}

impl Sealed for TraceCollector {}

impl Observer for TraceCollector {
    fn on_event(&mut self, event: EngineEvent) {
        let name = match event {
            EngineEvent::Attached { backend, .. } => {
                format!("attached ({})", backend.as_str())
            }
            EngineEvent::FfPromoted {
                k, growth, period, ..
            } => format!("ff promoted @k={k} (growth {growth}, period {period})"),
            EngineEvent::FfDemoted { k, .. } => format!("ff demoted @k={k}"),
            EngineEvent::LaneEjected { lane, reason } => {
                format!("lane {lane} ejected ({})", reason.as_str())
            }
            EngineEvent::Overflow { k } => format!("overflow @k={k}"),
            EngineEvent::Reset => "reset".to_string(),
            // Per-offer instants would dominate the trace; the busy tracks
            // already carry the per-iteration story.
            EngineEvent::Offer { .. }
            | EngineEvent::BatchSweep { .. }
            | EngineEvent::OutputAck { .. } => return,
        };
        let at_us = self.now_us();
        self.instants.push(HostInstant { name, at_us });
    }

    fn on_records(&mut self, lane: u32, records: &[ExecRecord]) {
        for r in records {
            self.track_slot(lane, r.resource.index())
                .raw
                .push((r.start.ticks(), r.end.ticks()));
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use evolve_model::{FunctionId, ResourceId, ResourceTrace};

    use super::*;

    fn rec(resource: usize, start: u64, end: u64) -> ExecRecord {
        ExecRecord {
            resource: ResourceId::from_index(resource),
            function: FunctionId::from_index(0),
            stmt: 0,
            k: 0,
            start: Time::from_ticks(start),
            end: Time::from_ticks(end),
            ops: 1,
        }
    }

    #[test]
    fn merged_intervals_match_resource_trace() {
        let records = [
            rec(0, 20, 30),
            rec(0, 0, 10),
            rec(0, 5, 15),
            rec(0, 7, 7), // zero-width: dropped by both constructions
        ];
        let mut collector = TraceCollector::new();
        collector.on_records(0, &records);
        let trace = ResourceTrace::from_records(&records, ResourceId::from_index(0));
        assert_eq!(collector.merged_intervals(0, 0), trace.intervals);
        assert!(collector.merged_intervals(0, 9).is_empty());
    }

    #[test]
    fn chrome_trace_document_shape() {
        let mut collector = TraceCollector::new();
        collector.on_records(0, &[rec(1, 1000, 3000)]);
        collector.on_event(EngineEvent::Reset);
        let start = collector.now_us();
        collector.push_span("drive", start, start + 5.0);
        let doc = collector.to_chrome_trace().render();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":2")); // 2000 ticks = 2 µs
        assert!(doc.contains("lane 0 / resource 1"));
        assert!(doc.contains("\"reset\""));
    }

    #[test]
    fn merged_shards_export_deterministically_in_either_order() {
        // Two "shard" collectors with interleaved spans, instants, and
        // overlapping (lane, resource) tracks: merging a⟵b and b⟵a must
        // render byte-identical documents.
        let build = |flip: bool| {
            let mut a = TraceCollector::new();
            let mut b = TraceCollector::new();
            a.push_span("dispatch batch 1", 10.0, 30.0);
            b.push_span("dispatch batch 2", 5.0, 12.0);
            a.push_span("dispatch batch 3", 5.0, 9.0);
            b.push_span("drain", 10.0, 30.0); // same interval as batch 1
            a.on_records(0, &[rec(0, 0, 10), rec(1, 4, 6)]);
            b.on_records(0, &[rec(0, 8, 20)]);
            b.on_records(2, &[rec(0, 0, 5)]);
            if flip {
                b.merge(a);
                b
            } else {
                a.merge(b);
                a
            }
        };
        let forward = build(false).to_chrome_trace().render();
        let backward = build(true).to_chrome_trace().render();
        assert_eq!(forward, backward);
        // Merged overlapping track intervals still coalesce.
        assert!(forward.contains("\"dur\":0.02")); // [0,20) ticks on (0,0)
    }

    #[test]
    fn push_span_order_does_not_leak_into_export() {
        let mut a = TraceCollector::new();
        a.push_span("later", 100.0, 110.0);
        a.push_span("earlier", 1.0, 2.0);
        let mut b = TraceCollector::new();
        b.push_span("earlier", 1.0, 2.0);
        b.push_span("later", 100.0, 110.0);
        assert_eq!(
            a.to_chrome_trace().render(),
            b.to_chrome_trace().render()
        );
        let doc = a.to_chrome_trace().render();
        let earlier = doc.find("earlier").expect("earlier span");
        let later = doc.find("later").expect("later span");
        assert!(earlier < later, "spans must export in start order");
    }

    #[test]
    fn lanes_get_separate_tracks() {
        let mut collector = TraceCollector::new();
        collector.on_records(0, &[rec(0, 0, 10)]);
        collector.on_records(1, &[rec(0, 0, 20)]);
        assert_eq!(collector.tracks().count(), 2);
        assert_eq!(
            collector.merged_intervals(1, 0),
            vec![(Time::ZERO, Time::from_ticks(20))]
        );
    }
}
