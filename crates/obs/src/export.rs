//! Prometheus text-exposition rendering of a [`MetricsSnapshot`].
//!
//! The format is the plain-text exposition format (version 0.0.4): one
//! `# HELP` / `# TYPE` header per family, `evolve_`-prefixed metric
//! names, labels for per-resource series, and `_bucket`/`_sum`/`_count`
//! series for the log-bucketed duration histograms.

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, help, "counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Renders `snapshot` in the Prometheus text exposition format.
pub fn prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    // Build metadata first, so a scrape that is truncated mid-stream
    // still identifies the producing binary.
    family(
        &mut out,
        "evolve_build_info",
        "Build metadata; value is always 1",
        "gauge",
    );
    let _ = writeln!(
        out,
        "evolve_build_info{{version=\"{}\",profile=\"{}\"}} 1",
        env!("CARGO_PKG_VERSION"),
        if cfg!(debug_assertions) { "debug" } else { "release" },
    );

    counter(
        &mut out,
        "evolve_engine_nodes_computed_total",
        "Graph nodes computed across all iterations",
        snapshot.engine.nodes_computed,
    );
    counter(
        &mut out,
        "evolve_engine_arcs_evaluated_total",
        "Arc-weight evaluations performed",
        snapshot.engine.arcs_evaluated,
    );
    counter(
        &mut out,
        "evolve_engine_iterations_completed_total",
        "Iterations fully computed",
        snapshot.engine.iterations_completed,
    );
    counter(
        &mut out,
        "evolve_engine_lanes_evaluated_total",
        "Scenario lanes evaluated by batched engines",
        snapshot.engine.lanes_evaluated,
    );
    counter(
        &mut out,
        "evolve_engine_batched_iterations_total",
        "Lockstep batched sweeps performed",
        snapshot.engine.batched_iterations,
    );

    counter(
        &mut out,
        "evolve_ff_promotions_total",
        "Fast-forward promotions to template replay",
        snapshot.ff.promotions,
    );
    counter(
        &mut out,
        "evolve_ff_demotions_total",
        "Fast-forward demotions back to the full sweep",
        snapshot.ff.demotions,
    );
    counter(
        &mut out,
        "evolve_ff_fast_forwarded_iterations_total",
        "Iterations answered by template replay",
        snapshot.ff.fast_forwarded_iterations,
    );

    family(
        &mut out,
        "evolve_batch_width",
        "Configured lockstep batch width",
        "gauge",
    );
    let _ = writeln!(out, "evolve_batch_width {}", snapshot.batch.batch_width);
    counter(
        &mut out,
        "evolve_batch_batches_formed_total",
        "Lockstep batches driven to completion",
        snapshot.batch.batches_formed,
    );
    counter(
        &mut out,
        "evolve_batch_lanes_batched_total",
        "Scenarios evaluated as lanes of a batch",
        snapshot.batch.lanes_batched,
    );
    counter(
        &mut out,
        "evolve_batch_lanes_scalar_total",
        "Scenarios evaluated on the scalar path",
        snapshot.batch.lanes_scalar,
    );
    counter(
        &mut out,
        "evolve_batch_lockstep_iterations_total",
        "Lockstep sweeps executed across all batches",
        snapshot.batch.lockstep_iterations,
    );
    family(
        &mut out,
        "evolve_batch_kernel_sweeps_total",
        "Lockstep sweeps by fold-kernel dispatch path",
        "counter",
    );
    for (path, value) in [
        ("chunked", snapshot.batch.kernel_chunked_sweeps),
        ("scalar", snapshot.batch.kernel_scalar_sweeps),
    ] {
        let _ = writeln!(out, "evolve_batch_kernel_sweeps_total{{path=\"{path}\"}} {value}");
    }
    family(
        &mut out,
        "evolve_batch_ejections_total",
        "Scenarios ejected from batching to the scalar path, by reason",
        "counter",
    );
    for (reason, value) in [
        ("worklist", snapshot.batch.eject_worklist),
        ("empty_trace", snapshot.batch.eject_empty_trace),
        ("single_lane", snapshot.batch.eject_single_lane),
        ("unsupported", snapshot.batch.eject_unsupported),
        ("partitioned", snapshot.batch.eject_partitioned),
    ] {
        let _ = writeln!(out, "evolve_batch_ejections_total{{reason=\"{reason}\"}} {value}");
    }

    counter(
        &mut out,
        "evolve_delta_chains_formed_total",
        "Base+sibling delta chains formed by the sweep planner",
        snapshot.delta.chains_formed,
    );
    counter(
        &mut out,
        "evolve_delta_lanes_base_total",
        "Scenarios evaluated as fully-swept delta-chain bases",
        snapshot.delta.lanes_base,
    );
    counter(
        &mut out,
        "evolve_delta_lanes_delta_total",
        "Scenarios evaluated against a base cache",
        snapshot.delta.lanes_delta,
    );
    counter(
        &mut out,
        "evolve_delta_calls_total",
        "Input offers answered by the delta sweep",
        snapshot.delta.calls_delta,
    );
    counter(
        &mut out,
        "evolve_delta_calls_full_total",
        "Offers a delta-linked engine evaluated fully",
        snapshot.delta.calls_full,
    );
    counter(
        &mut out,
        "evolve_delta_nodes_reused_total",
        "Node instants copied from the base cache",
        snapshot.delta.nodes_reused,
    );
    counter(
        &mut out,
        "evolve_delta_nodes_recomputed_total",
        "Node instants recomputed by the change frontier",
        snapshot.delta.nodes_recomputed,
    );
    counter(
        &mut out,
        "evolve_delta_nodes_settled_total",
        "Recomputed instants that matched the cache (frontier early-out)",
        snapshot.delta.nodes_settled,
    );
    counter(
        &mut out,
        "evolve_delta_frontier_collapses_total",
        "Delta calls that recomputed zero nodes",
        snapshot.delta.frontier_collapses,
    );
    family(
        &mut out,
        "evolve_delta_ejections_total",
        "Scenarios ejected from delta chains to full evaluation, by reason",
        "counter",
    );
    for (reason, value) in [
        ("multi_input", snapshot.delta.eject_multi_input),
        ("output_acks", snapshot.delta.eject_output_acks),
        ("worklist", snapshot.delta.eject_worklist),
        ("structure_mismatch", snapshot.delta.eject_structure_mismatch),
    ] {
        let _ = writeln!(out, "evolve_delta_ejections_total{{reason=\"{reason}\"}} {value}");
    }

    counter(
        &mut out,
        "evolve_partition_parallel_iterations_total",
        "Iterations evaluated by the partitioned parallel sweep",
        snapshot.partition.parallel_iterations,
    );
    counter(
        &mut out,
        "evolve_partition_serial_iterations_total",
        "Serial fast-path iterations while a partition runtime was attached",
        snapshot.partition.serial_iterations,
    );
    gauge(
        &mut out,
        "evolve_partition_partitions",
        "Planned partitions of the largest partition plan seen",
        snapshot.partition.partitions,
    );
    gauge(
        &mut out,
        "evolve_partition_planned_barriers",
        "Levels with a planned barrier in the largest plan seen",
        snapshot.partition.planned_barriers,
    );
    gauge(
        &mut out,
        "evolve_partition_frontier_arcs",
        "Cross-partition zero-delay arcs in the largest plan seen",
        snapshot.partition.frontier_arcs,
    );
    counter(
        &mut out,
        "evolve_partition_barrier_crossings_total",
        "Spin-barrier crossings executed, summed over workers",
        snapshot.partition.barrier_crossings,
    );
    counter(
        &mut out,
        "evolve_partition_speculative_reads_total",
        "Optimistic cross-partition reads served from the frontier cache",
        snapshot.partition.speculative_reads,
    );
    counter(
        &mut out,
        "evolve_partition_speculation_misses_total",
        "Speculative reads whose cached value turned out stale",
        snapshot.partition.speculation_misses,
    );
    counter(
        &mut out,
        "evolve_partition_rollbacks_total",
        "Iterations that ran the rollback pass",
        snapshot.partition.rollbacks,
    );
    counter(
        &mut out,
        "evolve_partition_slots_recomputed_total",
        "Slots recomputed by rollback change propagation",
        snapshot.partition.slots_recomputed,
    );

    counter(
        &mut out,
        "evolve_serve_connections_total",
        "Client connections accepted by the serve daemon",
        snapshot.serve.connections,
    );
    counter(
        &mut out,
        "evolve_serve_requests_total",
        "Requests admitted into shard queues",
        snapshot.serve.requests,
    );
    counter(
        &mut out,
        "evolve_serve_rejected_total",
        "Requests shed with a BUSY response (queue over max_queue_depth)",
        snapshot.serve.rejected,
    );
    counter(
        &mut out,
        "evolve_serve_responses_total",
        "Successful evaluation responses written",
        snapshot.serve.responses,
    );
    counter(
        &mut out,
        "evolve_serve_errors_total",
        "Error responses written",
        snapshot.serve.errors,
    );
    family(
        &mut out,
        "evolve_serve_batches_total",
        "Affinity batches dispatched, by trigger",
        "counter",
    );
    for (trigger, value) in [
        ("full", snapshot.serve.batches_full),
        ("deadline", snapshot.serve.batches_deadline),
    ] {
        let _ = writeln!(out, "evolve_serve_batches_total{{trigger=\"{trigger}\"}} {value}");
    }
    family(
        &mut out,
        "evolve_serve_lanes_total",
        "Request lanes evaluated, by path",
        "counter",
    );
    for (path, value) in [
        ("batched", snapshot.serve.lanes_batched),
        ("scalar", snapshot.serve.lanes_scalar),
        ("delta", snapshot.serve.lanes_delta),
    ] {
        let _ = writeln!(out, "evolve_serve_lanes_total{{path=\"{path}\"}} {value}");
    }

    if let Some(gauges) = &snapshot.serve_gauges {
        gauge(
            &mut out,
            "evolve_serve_queue_depth",
            "Requests currently queued across all shards",
            gauges.queue_depth,
        );
        gauge(
            &mut out,
            "evolve_serve_connections",
            "Live client connections",
            gauges.connections,
        );
        family(
            &mut out,
            "evolve_uptime_seconds",
            "Seconds since the server started",
            "gauge",
        );
        let _ = writeln!(out, "evolve_uptime_seconds {}", gauges.uptime_seconds);
    }

    if !snapshot.phases.is_empty() {
        family(
            &mut out,
            "evolve_serve_phase_seconds",
            "Request-lifecycle phase latency (flight recorder; power-of-two buckets)",
            "histogram",
        );
        for p in &snapshot.phases {
            for (le_ns, cum) in p.hist.cumulative_buckets() {
                let _ = writeln!(
                    out,
                    "evolve_serve_phase_seconds_bucket{{phase=\"{}\",le=\"{}\"}} {cum}",
                    p.phase,
                    le_ns as f64 / 1e9
                );
            }
            let _ = writeln!(
                out,
                "evolve_serve_phase_seconds_bucket{{phase=\"{}\",le=\"+Inf\"}} {}",
                p.phase,
                p.hist.count()
            );
            let _ = writeln!(
                out,
                "evolve_serve_phase_seconds_sum{{phase=\"{}\"}} {}",
                p.phase,
                p.hist.sum() as f64 / 1e9
            );
            let _ = writeln!(
                out,
                "evolve_serve_phase_seconds_count{{phase=\"{}\"}} {}",
                p.phase,
                p.hist.count()
            );
        }
    }

    family(
        &mut out,
        "evolve_events_total",
        "Engine lifecycle events observed, by kind",
        "counter",
    );
    for (kind, value) in [
        ("attach", snapshot.events.attaches),
        ("offer", snapshot.events.offers),
        ("offer_replayed", snapshot.events.replayed_offers),
        ("batch_sweep", snapshot.events.batch_sweeps),
        ("batch_sweep_replayed", snapshot.events.replayed_batch_sweeps),
        ("output_ack", snapshot.events.output_acks),
        ("ff_promoted", snapshot.events.promotions),
        ("ff_demoted", snapshot.events.demotions),
        ("lane_ejected", snapshot.events.lane_ejections),
        ("overflow", snapshot.events.overflows),
        ("reset", snapshot.events.resets),
    ] {
        let _ = writeln!(out, "evolve_events_total{{kind=\"{kind}\"}} {value}");
    }

    counter(
        &mut out,
        "evolve_boundary_events_total",
        "Interface instants the equivalent model still simulates",
        snapshot.events.boundary_events(),
    );

    family(
        &mut out,
        "evolve_event_ratio",
        "Kernel events avoided plus boundary events, over boundary events (Table I)",
        "gauge",
    );
    match snapshot.event_ratio() {
        Some(ratio) => {
            let _ = writeln!(out, "evolve_event_ratio {ratio}");
        }
        None => {
            let _ = writeln!(out, "evolve_event_ratio NaN");
        }
    }

    family(
        &mut out,
        "evolve_resource_busy_ticks_total",
        "Observation-time busy ticks per resource",
        "counter",
    );
    for r in &snapshot.resources {
        let _ = writeln!(
            out,
            "evolve_resource_busy_ticks_total{{resource=\"{}\"}} {}",
            r.resource, r.busy_ticks
        );
    }
    family(
        &mut out,
        "evolve_resource_ops_total",
        "Abstract operations executed per resource",
        "counter",
    );
    for r in &snapshot.resources {
        let _ = writeln!(
            out,
            "evolve_resource_ops_total{{resource=\"{}\"}} {}",
            r.resource, r.ops
        );
    }
    family(
        &mut out,
        "evolve_resource_records_total",
        "Execution records observed per resource",
        "counter",
    );
    for r in &snapshot.resources {
        let _ = writeln!(
            out,
            "evolve_resource_records_total{{resource=\"{}\"}} {}",
            r.resource, r.records
        );
    }
    family(
        &mut out,
        "evolve_resource_out_of_order_total",
        "Records clamped by the streaming frontier (busy time exact iff 0)",
        "counter",
    );
    for r in &snapshot.resources {
        let _ = writeln!(
            out,
            "evolve_resource_out_of_order_total{{resource=\"{}\"}} {}",
            r.resource, r.out_of_order
        );
    }
    family(
        &mut out,
        "evolve_resource_utilization",
        "Busy ticks over observed horizon per resource",
        "gauge",
    );
    for r in &snapshot.resources {
        let _ = writeln!(
            out,
            "evolve_resource_utilization{{resource=\"{}\"}} {}",
            r.resource, r.utilization
        );
    }
    family(
        &mut out,
        "evolve_resource_exec_duration_ticks",
        "Execution record durations per resource (power-of-two buckets)",
        "histogram",
    );
    for r in &snapshot.resources {
        for (le, cum) in r.durations.cumulative_buckets() {
            let _ = writeln!(
                out,
                "evolve_resource_exec_duration_ticks_bucket{{resource=\"{}\",le=\"{le}\"}} {cum}",
                r.resource
            );
        }
        let _ = writeln!(
            out,
            "evolve_resource_exec_duration_ticks_bucket{{resource=\"{}\",le=\"+Inf\"}} {}",
            r.resource,
            r.durations.count()
        );
        let _ = writeln!(
            out,
            "evolve_resource_exec_duration_ticks_sum{{resource=\"{}\"}} {}",
            r.resource,
            r.durations.sum()
        );
        let _ = writeln!(
            out,
            "evolve_resource_exec_duration_ticks_count{{resource=\"{}\"}} {}",
            r.resource,
            r.durations.count()
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use evolve_des::Time;
    use evolve_model::{ExecRecord, FunctionId, ResourceId};

    use crate::metrics::TelemetrySink;
    use crate::Observer as _;

    use super::*;

    #[test]
    fn prometheus_exposition_shape() {
        let mut sink = TelemetrySink::new();
        sink.on_records(
            0,
            &[ExecRecord {
                resource: ResourceId::from_index(2),
                function: FunctionId::from_index(0),
                stmt: 0,
                k: 0,
                start: Time::from_ticks(0),
                end: Time::from_ticks(10),
                ops: 100,
            }],
        );
        sink.on_event(crate::EngineEvent::Offer {
            k: 0,
            lane: 0,
            replayed: false,
        });
        sink.record_serve(crate::ServeCounters {
            requests: 5,
            rejected: 2,
            batches_full: 1,
            lanes_batched: 4,
            ..crate::ServeCounters::default()
        });
        let text = prometheus(&sink.snapshot());
        assert!(text.contains("# TYPE evolve_engine_nodes_computed_total counter"));
        assert!(text.contains("evolve_serve_requests_total 5"));
        assert!(text.contains("evolve_serve_rejected_total 2"));
        assert!(text.contains("evolve_serve_batches_total{trigger=\"full\"} 1"));
        assert!(text.contains("evolve_serve_lanes_total{path=\"batched\"} 4"));
        assert!(text.contains("evolve_resource_busy_ticks_total{resource=\"2\"} 10"));
        assert!(text.contains("evolve_events_total{kind=\"offer\"} 1"));
        assert!(text.contains("evolve_resource_exec_duration_ticks_bucket{resource=\"2\",le=\"16\"} 1"));
        assert!(text.contains("evolve_resource_exec_duration_ticks_bucket{resource=\"2\",le=\"+Inf\"} 1"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn empty_snapshot_renders_nan_ratio() {
        let text = prometheus(&TelemetrySink::new().snapshot());
        assert!(text.contains("evolve_event_ratio NaN"));
    }

    #[test]
    fn build_info_always_present() {
        let text = prometheus(&TelemetrySink::new().snapshot());
        assert!(text.contains("# TYPE evolve_build_info gauge"));
        assert!(text.contains(&format!(
            "evolve_build_info{{version=\"{}\",profile=\"",
            env!("CARGO_PKG_VERSION")
        )));
    }

    #[test]
    fn serve_gauges_and_phase_histograms_render() {
        use crate::flight::{FlightRecorder, Phase, TrackId};
        use crate::metrics::ServeGauges;

        let recorder = FlightRecorder::new(1, 8);
        let track = recorder.register_track("shard-0");
        assert_ne!(track, TrackId::INVALID);
        recorder.record(track, Phase::QueueWait, 1, 0, 1_500, 0, 0);
        recorder.record(track, Phase::Eval, 1, 1_500, 9_000, 0, 1);

        let mut snapshot = TelemetrySink::new().snapshot();
        snapshot.phases = recorder.phase_snapshots();
        snapshot.serve_gauges = Some(ServeGauges {
            queue_depth: 3,
            connections: 2,
            uptime_seconds: 1.5,
        });
        let text = prometheus(&snapshot);
        assert!(text.contains("evolve_serve_queue_depth 3"));
        assert!(text.contains("evolve_serve_connections 2"));
        assert!(text.contains("evolve_uptime_seconds 1.5"));
        assert!(text.contains("# TYPE evolve_serve_phase_seconds histogram"));
        assert!(text.contains("evolve_serve_phase_seconds_count{phase=\"queue_wait\"} 1"));
        assert!(text.contains("evolve_serve_phase_seconds_bucket{phase=\"eval\",le=\"+Inf\"} 1"));
        // 1500 ns rounds into the 2^11 bucket = 2048 ns = 2.048e-6 s.
        assert!(text.contains("evolve_serve_phase_seconds_bucket{phase=\"queue_wait\",le=\"0.000002048\"} 1"));
    }
}
