//! An always-on host-time flight recorder for the serving and partition
//! layers.
//!
//! [`FlightRecorder`] keeps the last N lifecycle spans per *track* (one
//! track per serve shard, one per partition worker) in bounded,
//! lock-free ring buffers, so a live daemon can answer "where did this
//! request's time go?" at any moment without ever blocking the hot path:
//!
//! - writers are wait-free: each track has exactly **one writer thread**
//!   (the shard loop, or one scoped partition worker), which publishes a
//!   span with plain atomic stores guarded by a per-slot sequence word;
//! - readers (a `Dump` protocol request, a SIGUSR1 handler, shutdown)
//!   walk the rings concurrently and *discard* any slot whose sequence
//!   word changed underneath them — the oldest spans are evicted by
//!   wrap-around, never torn;
//! - every recorded span also feeds a per-[`Phase`] [`LogHistogram`], so
//!   the same subsystem powers the `evolve_serve_phase_seconds`
//!   Prometheus families and p50/p95/p99 JSON summaries.
//!
//! The sequence protocol: slot `seq` is `2·(ticket+1)` once ticket
//! `ticket`'s span is fully published and `2·ticket+1` (odd) while it is
//! being written. Tickets are monotone per track, so a stable slot value
//! uniquely identifies *which* span occupies the slot — a reader accepts
//! a slot only when both sequence reads around the field loads equal the
//! expected even value for that ticket. All accesses are plain atomics
//! (this crate forbids `unsafe`); a lost span under extreme wrap pressure
//! degrades the diagnostic trace, never the evaluation.
//!
//! The export is Chrome trace-event JSON (process id 3, one thread per
//! track), loadable in Perfetto next to the observation-time and
//! host-time tracks of [`TraceCollector`](crate::TraceCollector).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;
use crate::metrics::{LogHistogram, PhaseSnapshot};

/// Flight-recorder process id in the exported Chrome trace (the
/// `TraceCollector` uses 1 for observation time and 2 for host time).
const PID_FLIGHT: u64 = 3;

/// Words per ring slot: sequence, correlation id, start, duration,
/// packed phase/label, argument.
const SLOT_WORDS: usize = 6;

/// Cap on interned labels: lookup is a linear scan under a lock, and
/// hostile clients can mint label strings (named-model ids), so the
/// table must stay small and bounded.
pub const MAX_LABELS: usize = 1024;

/// A request-lifecycle (or partition-sweep) phase.
///
/// The first six phases are the serving pipeline a request traverses in
/// order; the last three are emitted by the partitioned intra-graph
/// sweep (`crates/core/src/parallel.rs` workers) so speculation waste is
/// visible per worker and per level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Wire-frame decode on the connection reader thread.
    Decode = 0,
    /// Admission to shard-queue dequeue.
    QueueWait = 1,
    /// Affinity-group formation: first lane parked to batch dispatch.
    BatchForm = 2,
    /// Engine evaluation (batched or scalar drive).
    Eval = 3,
    /// Response encoding.
    Encode = 4,
    /// Response frame write on the client socket.
    Write = 5,
    /// One per-worker, per-level partition sweep.
    Sweep = 6,
    /// Speculation validation after a partitioned iteration.
    Validate = 7,
    /// Rollback recomputation of misspeculated slots.
    Rollback = 8,
}

/// Number of phases (and per-phase histograms).
pub const PHASE_COUNT: usize = 9;

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Decode,
        Phase::QueueWait,
        Phase::BatchForm,
        Phase::Eval,
        Phase::Encode,
        Phase::Write,
        Phase::Sweep,
        Phase::Validate,
        Phase::Rollback,
    ];

    /// Stable lowercase name, used as the Prometheus `phase` label and
    /// the Chrome-trace span name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Decode => "decode",
            Phase::QueueWait => "queue_wait",
            Phase::BatchForm => "batch_form",
            Phase::Eval => "eval",
            Phase::Encode => "encode",
            Phase::Write => "write",
            Phase::Sweep => "sweep",
            Phase::Validate => "validate",
            Phase::Rollback => "rollback",
        }
    }

    fn from_u8(v: u8) -> Option<Phase> {
        Phase::ALL.get(v as usize).copied()
    }
}

/// Handle to one recorder track. Obtained from
/// [`FlightRecorder::register_track`]; the invalid sentinel (returned
/// when the track table is full) makes every record a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackId(u16);

impl TrackId {
    /// A handle that records nothing.
    pub const INVALID: TrackId = TrackId(u16::MAX);

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One readable span, as recovered from a ring by a dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightSpan {
    /// Track the span was recorded on.
    pub track: u16,
    /// Lifecycle phase.
    pub phase: Phase,
    /// Server-assigned correlation id (0 when not request-scoped).
    pub corr: u64,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Interned label id (0 = none); see [`FlightRecorder::intern`].
    pub label: u32,
    /// Phase-specific argument (lane count, level index, …).
    pub arg: u64,
}

/// One track's ring: a monotone ticket counter plus `capacity` slots of
/// [`SLOT_WORDS`] atomics each.
#[derive(Debug)]
struct Ring {
    head: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..capacity * SLOT_WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// The bounded, per-track ring-buffer span recorder. See the module docs
/// for the concurrency contract.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    /// Slots per track; always a power of two.
    capacity: usize,
    rings: Box<[Ring]>,
    /// Registered track names; `names.len()` is the registration cursor.
    names: Mutex<Vec<String>>,
    /// Interned span labels (ModelSpec families); id 0 is "no label".
    labels: Mutex<Vec<String>>,
    /// Per-phase duration histograms (nanoseconds), fed on every record.
    phases: [PhaseHistogram; PHASE_COUNT],
}

impl FlightRecorder {
    /// A recorder with room for `max_tracks` tracks of
    /// `capacity_per_track` spans each (rounded up to a power of two,
    /// minimum 8). Memory is bounded at construction:
    /// `max_tracks × capacity × 48` bytes.
    pub fn new(max_tracks: usize, capacity_per_track: usize) -> FlightRecorder {
        let capacity = capacity_per_track.clamp(8, 1 << 20).next_power_of_two();
        FlightRecorder {
            epoch: Instant::now(),
            capacity,
            rings: (0..max_tracks.max(1)).map(|_| Ring::new(capacity)).collect(),
            names: Mutex::new(Vec::new()),
            labels: Mutex::new(Vec::new()),
            phases: std::array::from_fn(|_| PhaseHistogram::new()),
        }
    }

    /// Spans each track can hold before wrap-around eviction.
    pub fn capacity_per_track(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since the recorder's epoch — the time base for span
    /// endpoints.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Registers a named track (e.g. `"shard-0"`, `"shard-0/worker-1"`)
    /// and returns its handle. At most one thread may record on a track
    /// at a time. Returns [`TrackId::INVALID`] (a no-op handle) when the
    /// table is full.
    pub fn register_track(&self, name: &str) -> TrackId {
        let mut names = self.names.lock().expect("flight track registry");
        if names.len() >= self.rings.len() || names.len() >= usize::from(u16::MAX) {
            return TrackId::INVALID;
        }
        names.push(name.to_string());
        TrackId((names.len() - 1) as u16)
    }

    /// Interns a span label (a ModelSpec family name) and returns its
    /// id for [`record`](FlightRecorder::record). Takes a lock — cache
    /// the id rather than interning per span. The table is capped at
    /// [`MAX_LABELS`] entries (client-supplied names reach this path);
    /// past the cap new labels collapse to 0 ("no label").
    pub fn intern(&self, label: &str) -> u32 {
        let mut labels = self.labels.lock().expect("flight label table");
        if let Some(i) = labels.iter().position(|l| l == label) {
            return (i + 1) as u32;
        }
        if labels.len() >= MAX_LABELS {
            return 0;
        }
        labels.push(label.to_string());
        labels.len() as u32
    }

    /// Records one span on `track`. Wait-free; must only be called from
    /// the single thread that owns the track. A span on
    /// [`TrackId::INVALID`] is dropped (its duration still feeds the
    /// phase histogram).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        track: TrackId,
        phase: Phase,
        corr: u64,
        start_ns: u64,
        end_ns: u64,
        label: u32,
        arg: u64,
    ) {
        let dur_ns = end_ns.saturating_sub(start_ns);
        self.phases[phase as usize].record(dur_ns);
        let Some(ring) = self.rings.get(track.index()) else {
            return;
        };
        let ticket = ring.head.load(Ordering::Relaxed);
        let base = (ticket as usize & (self.capacity - 1)) * SLOT_WORDS;
        // Odd sequence: slot in flight. Readers racing with this write
        // see the odd value (or a mismatched even one) and skip the slot.
        ring.slots[base].store(ticket.wrapping_mul(2) + 1, Ordering::Release);
        ring.slots[base + 1].store(corr, Ordering::Relaxed);
        ring.slots[base + 2].store(start_ns, Ordering::Relaxed);
        ring.slots[base + 3].store(dur_ns, Ordering::Relaxed);
        ring.slots[base + 4].store(u64::from(label) << 8 | phase as u64, Ordering::Relaxed);
        ring.slots[base + 5].store(arg, Ordering::Relaxed);
        // Even sequence unique to this ticket: slot published.
        ring.slots[base].store(ticket.wrapping_add(1).wrapping_mul(2), Ordering::Release);
        ring.head.store(ticket.wrapping_add(1), Ordering::Release);
    }

    /// Snapshot of every readable span, oldest first per track. Safe to
    /// call while writers are recording: slots overwritten mid-read fail
    /// their sequence check and are dropped (eviction, not tearing).
    pub fn spans(&self) -> Vec<FlightSpan> {
        let mut out = Vec::new();
        for (track, ring) in self.rings.iter().enumerate() {
            let head = ring.head.load(Ordering::Acquire);
            let lo = head.saturating_sub(self.capacity as u64);
            for ticket in lo..head {
                let base = (ticket as usize & (self.capacity - 1)) * SLOT_WORDS;
                let expected = ticket.wrapping_add(1).wrapping_mul(2);
                if ring.slots[base].load(Ordering::Acquire) != expected {
                    continue;
                }
                let corr = ring.slots[base + 1].load(Ordering::Acquire);
                let start_ns = ring.slots[base + 2].load(Ordering::Acquire);
                let dur_ns = ring.slots[base + 3].load(Ordering::Acquire);
                let meta = ring.slots[base + 4].load(Ordering::Acquire);
                let arg = ring.slots[base + 5].load(Ordering::Acquire);
                if ring.slots[base].load(Ordering::Acquire) != expected {
                    continue;
                }
                let Some(phase) = Phase::from_u8((meta & 0xff) as u8) else {
                    continue;
                };
                out.push(FlightSpan {
                    track: track as u16,
                    phase,
                    corr,
                    start_ns,
                    dur_ns,
                    label: (meta >> 8) as u32,
                    arg,
                });
            }
        }
        out
    }

    /// Per-phase duration histograms (nanosecond samples), in
    /// [`Phase::ALL`] order — the feed for the
    /// `evolve_serve_phase_seconds` Prometheus families.
    pub fn phase_snapshots(&self) -> Vec<PhaseSnapshot> {
        Phase::ALL
            .iter()
            .map(|p| PhaseSnapshot {
                phase: p.name(),
                hist: self.phases[*p as usize].snapshot(),
            })
            .collect()
    }

    /// Renders the recorder contents as a Chrome trace-event document
    /// (Perfetto-loadable): one named thread per track under process 3,
    /// spans annotated with correlation id, interned label, and the
    /// phase argument.
    pub fn to_chrome_trace(&self) -> Json {
        let names = self.names.lock().expect("flight track registry").clone();
        let labels = self.labels.lock().expect("flight label table").clone();
        let mut events: Vec<Json> = Vec::new();
        events.push(Json::object([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::U64(PID_FLIGHT)),
            ("tid", Json::U64(0)),
            (
                "args",
                Json::object([("name", Json::str("flight recorder (host time)"))]),
            ),
        ]));
        for (i, name) in names.iter().enumerate() {
            events.push(Json::object([
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::U64(PID_FLIGHT)),
                ("tid", Json::U64(i as u64 + 1)),
                ("args", Json::object([("name", Json::str(name.clone()))])),
            ]));
        }
        let mut spans = self.spans();
        spans.sort_by(|a, b| {
            (a.track, a.start_ns, a.phase as u8).cmp(&(b.track, b.start_ns, b.phase as u8))
        });
        for span in spans {
            let label = (span.label > 0)
                .then(|| labels.get(span.label as usize - 1))
                .flatten();
            let mut args = vec![
                ("corr".to_string(), Json::U64(span.corr)),
                ("arg".to_string(), Json::U64(span.arg)),
            ];
            if let Some(label) = label {
                args.push(("family".to_string(), Json::str(label.clone())));
            }
            events.push(Json::object([
                ("name", Json::str(span.phase.name())),
                ("cat", Json::str("flight")),
                ("ph", Json::str("X")),
                ("pid", Json::U64(PID_FLIGHT)),
                ("tid", Json::U64(u64::from(span.track) + 1)),
                ("ts", Json::F64(span.start_ns as f64 / 1000.0)),
                ("dur", Json::F64(span.dur_ns as f64 / 1000.0)),
                ("args", Json::Object(args)),
            ]));
        }
        Json::object([
            ("traceEvents", Json::Array(events)),
            ("displayTimeUnit", Json::str("ns")),
        ])
    }

    /// [`to_chrome_trace`](FlightRecorder::to_chrome_trace), rendered.
    pub fn render_chrome_trace(&self) -> String {
        self.to_chrome_trace().render()
    }
}

/// A lock-free [`LogHistogram`] twin recordable from any thread, frozen
/// into the exact [`LogHistogram`] on snapshot.
#[derive(Debug)]
struct PhaseHistogram {
    buckets: [AtomicU64; crate::metrics::HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl PhaseHistogram {
    fn new() -> PhaseHistogram {
        PhaseHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[LogHistogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LogHistogram {
        LogHistogram::from_parts(
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// The recorder handle an [`Engine`](../../evolve_core/struct.Engine.html)
/// carries so partition workers can emit per-level `sweep` /
/// `validate` / `rollback` spans: the shared recorder, one pre-registered
/// track per partition worker, and the correlation id of the request
/// currently being evaluated.
#[derive(Clone, Debug)]
pub struct PartitionTracer {
    /// The shared recorder.
    pub recorder: Arc<FlightRecorder>,
    /// One track per partition worker index (worker `p` records on
    /// `tracks[p]`; missing entries record nothing).
    pub tracks: Vec<TrackId>,
    /// Correlation id stamped on emitted spans (0 outside a request).
    pub corr: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_spans() {
        let rec = FlightRecorder::new(2, 16);
        let t0 = rec.register_track("shard-0");
        let label = rec.intern("pipeline/8");
        rec.record(t0, Phase::Eval, 7, 1_000, 5_000, label, 3);
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, Phase::Eval);
        assert_eq!(spans[0].corr, 7);
        assert_eq!(spans[0].start_ns, 1_000);
        assert_eq!(spans[0].dur_ns, 4_000);
        assert_eq!(spans[0].label, label);
        assert_eq!(spans[0].arg, 3);
    }

    #[test]
    fn wraparound_evicts_oldest_spans() {
        let rec = FlightRecorder::new(1, 8);
        let t = rec.register_track("shard-0");
        for i in 0..20u64 {
            rec.record(t, Phase::QueueWait, i, i * 10, i * 10 + 5, 0, 0);
        }
        let spans = rec.spans();
        // Capacity 8: exactly the newest 8 survive, oldest first.
        assert_eq!(spans.len(), 8);
        assert_eq!(
            spans.iter().map(|s| s.corr).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>()
        );
    }

    #[test]
    fn concurrent_dump_never_tears_spans() {
        // One writer hammering a tiny ring, one reader dumping in a loop:
        // every span the reader accepts must be self-consistent (the
        // writer always stores corr == arg == start_ns / 10).
        let rec = Arc::new(FlightRecorder::new(1, 8));
        let track = rec.register_track("w");
        let writer = {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    rec.record(track, Phase::Sweep, i, i * 10, i * 10 + 1, 0, i);
                }
            })
        };
        let mut seen = 0usize;
        for _ in 0..200 {
            for span in rec.spans() {
                assert_eq!(span.corr, span.arg, "torn span: corr/arg mismatch");
                assert_eq!(span.start_ns, span.corr * 10, "torn span: start mismatch");
                seen += 1;
            }
        }
        writer.join().expect("writer");
        assert!(seen > 0, "reader never observed a stable span");
    }

    #[test]
    fn full_track_table_returns_noop_handle() {
        let rec = FlightRecorder::new(1, 8);
        assert_ne!(rec.register_track("a"), TrackId::INVALID);
        let overflow = rec.register_track("b");
        assert_eq!(overflow, TrackId::INVALID);
        rec.record(overflow, Phase::Eval, 1, 0, 10, 0, 0);
        assert!(rec.spans().is_empty());
        // The histogram still sees the sample.
        let phases = rec.phase_snapshots();
        let eval = phases.iter().find(|p| p.phase == "eval").expect("eval");
        assert_eq!(eval.hist.count(), 1);
    }

    #[test]
    fn interning_dedupes_labels() {
        let rec = FlightRecorder::new(1, 8);
        let a = rec.intern("family-a");
        let b = rec.intern("family-b");
        assert_ne!(a, b);
        assert_eq!(rec.intern("family-a"), a);
    }

    #[test]
    fn chrome_trace_escapes_hostile_track_and_label_names() {
        let rec = FlightRecorder::new(2, 8);
        let t = rec.register_track("shard \"0\"\n\u{7f}");
        let label = rec.intern("evil\"model\u{1b}\u{2028}");
        rec.record(t, Phase::Eval, 1, 0, 100, label, 0);
        let doc = rec.render_chrome_trace();
        assert!(doc.contains("\\\"0\\\""));
        assert!(doc.contains("\\u007f"));
        assert!(doc.contains("\\u001b"));
        assert!(doc.contains("\\u2028"));
        assert!(!doc.contains('\n'), "raw control characters leaked");
        assert!(crate::json::parses(&doc), "trace must be valid JSON");
    }

    #[test]
    fn phase_histograms_power_prometheus_quantiles() {
        let rec = FlightRecorder::new(1, 8);
        let t = rec.register_track("shard-0");
        for dur in [100u64, 200, 400, 100_000] {
            rec.record(t, Phase::QueueWait, 0, 0, dur, 0, 0);
        }
        let phases = rec.phase_snapshots();
        let qw = phases
            .iter()
            .find(|p| p.phase == "queue_wait")
            .expect("queue_wait");
        assert_eq!(qw.hist.count(), 4);
        assert!(qw.hist.quantile(0.5) >= 200);
        assert!(qw.hist.quantile(0.99) >= 100_000);
    }
}
