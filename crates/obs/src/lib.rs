//! Streaming observation-time telemetry for the evolve engines.
//!
//! The paper's equivalent model promises *zero observability loss*: every
//! intermediate instant a conventional simulation would produce can be
//! replayed on the local observation-time axis (PAPER.md §1, Figs. 7–8).
//! This crate turns that guarantee into a live telemetry layer instead of
//! a post-hoc buffer scan:
//!
//! - [`Observer`] — a sealed sink trait engines call at their boundary
//!   (one branch per offer when detached, so disabled telemetry costs
//!   nothing measurable in the hot loop);
//! - [`EngineEvent`] — structured lifecycle events: backend selection,
//!   iteration sweeps, fast-forward promotion/demotion, batch lane
//!   ejection, overflow errors;
//! - [`TelemetrySink`] — bounded-memory streaming metrics: incremental
//!   busy-interval accumulation, log-bucketed duration histograms
//!   ([`LogHistogram`]), and the live event-ratio gauge of the paper's
//!   Table I; [`PeriodUsage`] folds a one-period template analytically
//!   (period count × per-period usage) for promoted lanes;
//! - exporters — Prometheus text exposition ([`prometheus`]), JSON
//!   ([`MetricsSnapshot::to_json`] over the in-tree [`json::Json`]
//!   emitter), and Chrome trace-event JSON for Perfetto
//!   ([`TraceCollector`]).
//!
//! Dependency-wise the crate sits between `evolve-model` (record types)
//! and `evolve-core`/`evolve-explore` (which emit into it), so every
//! layer of the stack reports through one telemetry surface.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod event;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod trace;

pub use event::{BackendKind, EjectReason, EngineEvent};
pub use export::prometheus;
pub use flight::{FlightRecorder, FlightSpan, PartitionTracer, Phase, TrackId};
pub use json::Json;
pub use metrics::{
    BatchCounters, DeltaCounters, EngineCounters, EventCounters, FfCounters, FoldedResource,
    LogHistogram, MetricsSnapshot, PartitionCounters, PeriodUsage, PhaseSnapshot, ResourceMetrics,
    ResourceSnapshot, ServeCounters, ServeGauges, TelemetrySink,
};
pub use observer::{downcast, NullObserver, Observer};
pub use trace::TraceCollector;
