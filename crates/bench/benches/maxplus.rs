//! Micro-benchmarks of the (max,+) algebra kernels used by derivation and
//! analysis: Kleene star, cycle means, recurrence stepping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evolve_maxplus::{
    eigenpair, max_cycle_mean, star, LinearSystemBuilder, Matrix, MaxPlus, Vector,
};

/// A banded random-ish matrix: lower band finite, rest ε (acyclic).
fn banded(n: usize, band: usize) -> Matrix {
    let mut m = Matrix::epsilon(n, n);
    for i in 0..n {
        for j in i.saturating_sub(band)..i {
            m[(i, j)] = MaxPlus::new(((i * 31 + j * 17) % 100) as i64);
        }
    }
    m
}

/// A cyclic matrix: the band plus a feedback arc.
fn cyclic(n: usize, band: usize) -> Matrix {
    let mut m = banded(n, band);
    m[(0, n - 1)] = MaxPlus::new(5);
    m
}

fn bench_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxplus/star");
    group.sample_size(20);
    for n in [8usize, 32, 128] {
        let m = banded(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| star(&m).expect("acyclic"))
        });
    }
    group.finish();
}

fn bench_cycle_mean(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxplus/cycle_mean");
    group.sample_size(20);
    for n in [8usize, 32, 128] {
        let m = cyclic(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| max_cycle_mean(&m).expect("cyclic"))
        });
    }
    group.finish();
}

fn bench_eigenpair(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxplus/eigenpair");
    group.sample_size(20);
    for n in [8usize, 32] {
        let m = cyclic(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| eigenpair(&m))
        });
    }
    group.finish();
}

fn bench_system_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxplus/system_step_1k");
    group.sample_size(20);
    for n in [8usize, 32] {
        let a0 = banded(n, 3);
        let mut a1 = Matrix::epsilon(n, n);
        for i in 0..n {
            a1[(i, i)] = MaxPlus::new(10);
        }
        let mut b0 = Matrix::epsilon(n, 1);
        b0[(0, 0)] = MaxPlus::E;
        let mut c0 = Matrix::epsilon(1, n);
        c0[(0, n - 1)] = MaxPlus::E;
        let sys = LinearSystemBuilder::new(n, 1, 1)
            .push_a(a0.clone())
            .push_a(a1.clone())
            .push_b(b0.clone())
            .push_c(c0.clone())
            .build()
            .expect("well-formed");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut sys = sys.clone();
                let mut y = Vector::epsilon(1);
                for k in 0..1_000 {
                    y = sys.step(&Vector::from_finite(&[k])).expect("steps");
                }
                y
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_star,
    bench_cycle_mean,
    bench_eigenpair,
    bench_system_step
);
criterion_main!(benches);
