//! Micro-benchmarks of `ComputeInstant()` — the computation that replaces
//! simulation events, and whose growth with node count drives the paper's
//! Fig. 5 trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evolve_core::{derive_tdg, synthetic, Engine, EvalBackend};
use evolve_des::Time;
use evolve_model::didactic;

const ITERS: u64 = 1_000;

fn bench_compute_instant(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/compute_instant");
    group.sample_size(20);

    let d = didactic::chained(1, didactic::Params::default()).expect("builds");
    let derived = derive_tdg(&d.arch).expect("derives");
    let rels = d.arch.app().relations().len();
    for record in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("didactic_1k", record),
            &record,
            |b, &record| {
                b.iter(|| {
                    let mut e = Engine::new(derived.clone(), rels, record);
                    for k in 0..ITERS {
                        e.set_input(0, k, Time::from_ticks(k * 100), 8 + (k % 64));
                        while e.next_output(0).is_some() {}
                    }
                    e.stats()
                })
            },
        );
    }
    group.finish();
}

fn bench_padding_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/padding");
    group.sample_size(20);
    let p = synthetic::pipeline(3, 100, 1).expect("builds");
    let derived = derive_tdg(&p.arch).expect("derives");
    let rels = p.arch.app().relations().len();
    for padding in [0usize, 100, 1_000] {
        let padded = evolve_core::DerivedTdg::new(
            synthetic::pad(derived.tdg(), padding),
            derived.size_rules().to_vec(),
        );
        for backend in [EvalBackend::Compiled, EvalBackend::Worklist] {
            group.bench_with_input(
                BenchmarkId::new(backend.as_str(), padding),
                &padding,
                |b, _| {
                    b.iter(|| {
                        let mut e =
                            Engine::with_backend(padded.clone(), rels, false, backend);
                        for k in 0..ITERS {
                            e.set_input(0, k, Time::from_ticks(k * 100), 4);
                            while e.next_output(0).is_some() {}
                        }
                        e.stats()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/derive");
    group.sample_size(30);
    for stages in [1usize, 4, 16] {
        let d = didactic::chained(stages, didactic::Params::default()).expect("builds");
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| derive_tdg(&d.arch).expect("derives"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compute_instant, bench_padding_overhead, bench_derivation);
criterion_main!(benches);
