//! Criterion benches behind Table I: conventional vs. equivalent simulation
//! of the chained didactic example (native kernel regime; the printed
//! harness `table1` covers the calibrated regime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evolve_core::EquivalentModelBuilder;
use evolve_model::{didactic, elaborate, varying_sizes, Environment, Stimulus};

const TOKENS: u64 = 2_000;

fn didactic_env(stages: usize) -> (didactic::Didactic, Environment) {
    let d = didactic::chained(stages, didactic::Params::default()).expect("builds");
    let env = Environment::new().stimulus(
        d.input(),
        Stimulus::saturating(TOKENS, varying_sizes(1, 256, stages as u64)),
    );
    (d, env)
}

fn bench_conventional(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/conventional");
    group.sample_size(10);
    for stages in [1usize, 2, 4] {
        let (d, env) = didactic_env(stages);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| elaborate(&d.arch, &env).expect("builds").run())
        });
    }
    group.finish();
}

fn bench_equivalent(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/equivalent");
    group.sample_size(10);
    for stages in [1usize, 2, 4] {
        let (d, env) = didactic_env(stages);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| {
                EquivalentModelBuilder::new(&d.arch)
                    .record_observations(true)
                    .build(&env)
                    .expect("builds")
                    .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conventional, bench_equivalent);
criterion_main!(benches);
