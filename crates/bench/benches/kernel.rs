//! Micro-benchmarks of the DES kernel primitives — the per-event costs
//! whose multiplication by the event count the paper's method removes.

use criterion::{criterion_group, criterion_main, Criterion};
use evolve_des::{
    Activation, Api, ChannelId, Completion, Duration, Kernel, Process, ReadOutcome, WriteOutcome,
};

/// Ping: write a token, await the echo, repeat `rounds` times.
struct Ping {
    tx: ChannelId,
    rx: ChannelId,
    rounds: u64,
    state: u8, // 0 = ready to write, 1 = write parked, 2 = ready to read, 3 = read parked
}
impl Process<u64> for Ping {
    fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
        match (self.state, api.take_completion()) {
            (1, Some(Completion::WriteDone)) => self.state = 2,
            (3, Some(Completion::Read(_))) => {
                self.rounds -= 1;
                self.state = 0;
            }
            (_, None) => {}
            (s, c) => panic!("ping: unexpected completion {c:?} in state {s}"),
        }
        loop {
            match self.state {
                0 => {
                    if self.rounds == 0 {
                        return Activation::Done;
                    }
                    match api.write(self.tx, self.rounds) {
                        WriteOutcome::Done => self.state = 2,
                        WriteOutcome::Blocked => {
                            self.state = 1;
                            return Activation::Blocked;
                        }
                    }
                }
                2 => match api.read(self.rx) {
                    ReadOutcome::Done(_) => {
                        self.rounds -= 1;
                        self.state = 0;
                    }
                    ReadOutcome::Blocked => {
                        self.state = 3;
                        return Activation::Blocked;
                    }
                },
                s => unreachable!("ping state {s}"),
            }
        }
    }
}

/// Pong: read a token, echo it back, forever (ends when the kernel drains).
struct Pong {
    tx: ChannelId,
    rx: ChannelId,
    state: u8, // 0 = ready to read, 1 = read parked, 2 = ready to write, 3 = write parked
    value: u64,
}
impl Process<u64> for Pong {
    fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
        match (self.state, api.take_completion()) {
            (1, Some(Completion::Read(v))) => {
                self.value = v;
                self.state = 2;
            }
            (3, Some(Completion::WriteDone)) => self.state = 0,
            (_, None) => {}
            (s, c) => panic!("pong: unexpected completion {c:?} in state {s}"),
        }
        loop {
            match self.state {
                0 => match api.read(self.rx) {
                    ReadOutcome::Done(v) => {
                        self.value = v;
                        self.state = 2;
                    }
                    ReadOutcome::Blocked => {
                        self.state = 1;
                        return Activation::Blocked;
                    }
                },
                2 => match api.write(self.tx, self.value) {
                    WriteOutcome::Done => self.state = 0,
                    WriteOutcome::Blocked => {
                        self.state = 3;
                        return Activation::Blocked;
                    }
                },
                s => unreachable!("pong state {s}"),
            }
        }
    }
}

/// A timer process: one heap entry per wake.
struct Timer {
    remaining: u64,
}
impl Process<u64> for Timer {
    fn resume(&mut self, _api: &mut Api<'_, u64>) -> Activation {
        if self.remaining == 0 {
            return Activation::Done;
        }
        self.remaining -= 1;
        Activation::WaitFor(Duration::from_ticks(10))
    }
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(20);
    group.bench_function("rendezvous_pingpong_1k", |b| {
        b.iter(|| {
            let mut k = Kernel::new();
            let a = k.add_rendezvous();
            let bb = k.add_rendezvous();
            k.spawn(
                "ping",
                Ping {
                    tx: a,
                    rx: bb,
                    rounds: 1_000,
                    state: 0,
                },
            );
            k.spawn(
                "pong",
                Pong {
                    tx: bb,
                    rx: a,
                    state: 0,
                    value: 0,
                },
            );
            k.run();
            assert_eq!(k.relation_events(), 2_000, "both channels fully used");
            k.stats()
        })
    });
    group.bench_function("timed_waits_10k", |b| {
        b.iter(|| {
            let mut k: Kernel<u64> = Kernel::new();
            k.spawn("timer", Timer { remaining: 10_000 });
            k.run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
