//! Criterion benches behind the Section V measurement: the LTE receiver in
//! both model forms (native kernel regime).

use criterion::{criterion_group, criterion_main, Criterion};
use evolve_core::EquivalentModelBuilder;
use evolve_lte::{receiver, symbol_stimulus, Scenario};
use evolve_model::{elaborate, Environment};

const SYMBOLS: u64 = 1_400; // 100 frames

fn setup() -> (evolve_lte::Receiver, Environment) {
    let rx = receiver(Scenario::default()).expect("builds");
    let env = Environment::new().stimulus(rx.input, symbol_stimulus(rx.scenario, SYMBOLS, 42));
    (rx, env)
}

fn bench_lte(c: &mut Criterion) {
    let (rx, env) = setup();
    let mut group = c.benchmark_group("lte");
    group.sample_size(10);
    group.bench_function("conventional", |b| {
        b.iter(|| elaborate(&rx.arch, &env).expect("builds").run())
    });
    group.bench_function("equivalent/observing", |b| {
        b.iter(|| {
            EquivalentModelBuilder::new(&rx.arch)
                .record_observations(true)
                .build(&env)
                .expect("builds")
                .run()
        })
    });
    group.bench_function("equivalent/boundary", |b| {
        b.iter(|| {
            EquivalentModelBuilder::new(&rx.arch)
                .record_observations(false)
                .simplify(evolve_core::simplify::Options {
                    preserve_observations: false,
                })
                .build(&env)
                .expect("builds")
                .run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lte);
criterion_main!(benches);
