//! Ablation of the design choices called out in DESIGN.md: what each part
//! of the method buys.
//!
//! Axes:
//! * observation replay on/off (accuracy vs. speed of `ComputeInstant()`),
//!   measured through the scenario-sweep path with reused engines,
//! * graph simplification on/off (node count vs. engine cost),
//! * kernel cost regime (how much the event savings are worth),
//! * partial abstraction (hybrid model) as a middle ground.
//!
//! Usage: `ablation [tokens] [threads]` (defaults: 20 000, host parallelism).

use evolve_bench::{format_row, header, measure, sweep_measurements, Fidelity};
use evolve_core::{derive_tdg, simplify, EvalBackend};
use evolve_explore::{run_sweep, ModelKind, ModelSpec, ScenarioSpec, SweepConfig, TraceSpec};
use evolve_model::{didactic, varying_sizes, Environment, Stimulus};

fn main() {
    let mut args = std::env::args().skip(1);
    let tokens: u64 = args
        .next()
        .map(|s| s.parse().expect("tokens must be a number"))
        .unwrap_or(20_000);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    let d = didactic::chained(2, didactic::Params::default()).expect("didactic builds");
    let env = Environment::new().stimulus(
        d.input(),
        Stimulus::saturating(tokens, varying_sizes(1, 256, 9)),
    );

    println!("Ablation — didactic x2, {tokens} tokens");
    println!();

    // Graph sizes across simplification options.
    let derived = derive_tdg(&d.arch).expect("derives");
    let observing = simplify::simplify_default(derived.tdg());
    let boundary = simplify::simplify(
        derived.tdg(),
        &simplify::Options {
            preserve_observations: false,
        },
    );
    println!(
        "graph nodes: derived={}, simplified(observing)={}, simplified(boundary)={}",
        derived.tdg().node_count(),
        observing.node_count(),
        boundary.node_count()
    );
    println!();

    for cost in [0u64, 1_000] {
        println!("== dispatch cost {cost} ns (kernel-hosted equivalent model) ==");
        println!("{}", header());
        for fidelity in [Fidelity::Observing, Fidelity::BoundaryOnly] {
            let m = measure(format!("{fidelity:?}"), &d.arch, &env, fidelity, cost, 0);
            println!("{}", format_row(&m));
        }
        println!();
    }

    // The kernel-free sweep path: evaluation backend × observation replay
    // over a reused engine, conventional reference simulated per row.
    let scenario = |label: &str, backend: EvalBackend| ScenarioSpec {
        label: label.to_string(),
        model: ModelSpec { kind: ModelKind::Didactic { stages: 2 }, padding: 0, backend },
        trace: TraceSpec { tokens, min_size: 1, max_size: 256, mean_period: 0, seed: 9 },
    };
    println!("== engine drive (no kernel), backend x observation replay ==");
    println!("{}", header());
    let rows = [
        ("compiled+observe", EvalBackend::Compiled, true),
        ("compiled-only", EvalBackend::Compiled, false),
        ("worklist+observe", EvalBackend::Worklist, true),
        ("worklist-only", EvalBackend::Worklist, false),
    ];
    for (label, backend, record) in rows {
        let report = run_sweep(
            &[scenario(label, backend)],
            &SweepConfig {
                threads,
                record_observations: record,
                compare_conventional: true,
                ..SweepConfig::default()
            },
        );
        let m = &sweep_measurements(&report)[0];
        println!("{}", format_row(m));
        println!(
            "    engine: {} nodes computed, {} arc evaluations, {} iterations",
            m.engine_stats.nodes_computed,
            m.engine_stats.arcs_evaluated,
            m.engine_stats.iterations_completed
        );
    }
    println!();

    // Partial abstraction: abstract only the P1 side of each stage.
    let group: Vec<evolve_model::FunctionId> = (0..8)
        .filter(|i| i % 4 < 2) // F1, F2 of both stages (P1/P1.1 exclusive)
        .map(evolve_model::FunctionId::from_index)
        .collect();
    let conventional = evolve_model::elaborate(&d.arch, &env).expect("builds").run();
    let hybrid = evolve_core::partial::hybrid_simulation(&d.arch, &group, &env)
        .expect("hybrid builds")
        .run();
    let exact = (0..d.arch.app().relations().len()).all(|r| {
        conventional.relation_logs[r].write_instants
            == hybrid.run.relation_logs[r].write_instants
    });
    println!(
        "hybrid (P1-side abstracted): conv {:?} vs hybrid {:?}, activations {} -> {}, {}",
        conventional.wall,
        hybrid.run.wall,
        conventional.stats.activations,
        hybrid.run.stats.activations,
        if exact { "exact" } else { "MISMATCH" }
    );
}
