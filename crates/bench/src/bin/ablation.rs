//! Ablation of the design choices called out in DESIGN.md: what each part
//! of the method buys.
//!
//! Axes:
//! * observation replay on/off (accuracy vs. speed of `ComputeInstant()`),
//! * graph simplification on/off (node count vs. engine cost),
//! * kernel cost regime (how much the event savings are worth).
//!
//! Usage: `ablation [tokens]` (default 20 000).

use evolve_bench::{format_row, header, measure, Fidelity};
use evolve_core::{derive_tdg, simplify, EquivalentModelBuilder};
use evolve_model::{didactic, varying_sizes, Environment, Stimulus};

fn main() {
    let tokens: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("tokens must be a number"))
        .unwrap_or(20_000);

    let d = didactic::chained(2, didactic::Params::default()).expect("didactic builds");
    let env = Environment::new().stimulus(
        d.input(),
        Stimulus::saturating(tokens, varying_sizes(1, 256, 9)),
    );

    println!("Ablation — didactic x2, {tokens} tokens");
    println!();

    // Graph sizes across simplification options.
    let derived = derive_tdg(&d.arch).expect("derives");
    let observing = simplify::simplify_default(&derived.tdg);
    let boundary = simplify::simplify(
        &derived.tdg,
        &simplify::Options {
            preserve_observations: false,
        },
    );
    println!(
        "graph nodes: derived={}, simplified(observing)={}, simplified(boundary)={}",
        derived.tdg.node_count(),
        observing.node_count(),
        boundary.node_count()
    );
    println!();

    for cost in [0u64, 1_000] {
        println!("== dispatch cost {cost} ns ==");
        println!("{}", header());
        for fidelity in [Fidelity::Observing, Fidelity::BoundaryOnly] {
            let m = measure(format!("{fidelity:?}"), &d.arch, &env, fidelity, cost, 0);
            println!("{}", format_row(&m));
        }
        println!();
    }

    // Partial abstraction: abstract only the P1 side of each stage.
    let group: Vec<evolve_model::FunctionId> = (0..8)
        .filter(|i| i % 4 < 2) // F1, F2 of both stages (P1/P1.1 exclusive)
        .map(evolve_model::FunctionId::from_index)
        .collect();
    let conventional = evolve_model::elaborate(&d.arch, &env).expect("builds").run();
    let hybrid = evolve_core::partial::hybrid_simulation(&d.arch, &group, &env)
        .expect("hybrid builds")
        .run();
    let exact = (0..d.arch.app().relations().len()).all(|r| {
        conventional.relation_logs[r].write_instants
            == hybrid.run.relation_logs[r].write_instants
    });
    println!(
        "hybrid (P1-side abstracted): conv {:?} vs hybrid {:?}, activations {} -> {}, {}",
        conventional.wall,
        hybrid.run.wall,
        conventional.stats.activations,
        hybrid.run.stats.activations,
        if exact { "exact" } else { "MISMATCH" }
    );
    println!();

    // Engine statistics: how much computation replaces the saved events.
    let eq = EquivalentModelBuilder::new(&d.arch)
        .record_observations(true)
        .build(&env)
        .expect("builds")
        .run();
    println!(
        "engine: {} nodes computed, {} arc evaluations, {} iterations",
        eq.engine_stats.nodes_computed, eq.engine_stats.arcs_evaluated,
        eq.engine_stats.iterations_completed
    );
    println!(
        "kernel: conventional-style events replaced by {} boundary events",
        eq.boundary_relation_events
    );
}
