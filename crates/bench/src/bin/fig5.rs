//! Reproduces **Fig. 5**: "Evaluation of the influence of the computation
//! method complexity on the achieved simulation speed-up".
//!
//! For several sizes of the evolution-instant vector `X(k)` (pipelines of
//! increasing length), the temporal dependency graph is padded with
//! computation-only nodes and the simulation speed-up of the dynamic
//! computation path is measured against the node count. The paper observes
//! negligible influence below ~100 nodes, degradation beyond, and a
//! slow-down past ~1000 nodes.
//!
//! The whole (stages × padding) grid is one parallel scenario sweep: every
//! cell is a [`ScenarioSpec`] evaluated on a reused engine, with the
//! conventional reference simulation run per cell for the speed-up column.
//! A second grid compares the engine's evaluation backends (worklist vs.
//! compiled CSR sweep) directly — per-iteration `ComputeInstant()` cost at
//! 10/100/1000/5000 nodes — and writes it to `results/bench_engine.json`.
//!
//! Usage: `fig5 [tokens] [dispatch_cost_ns] [threads] [--quick]`
//! (defaults: 5 000 tokens, 1 µs reference calibration, host parallelism).
//! `--quick` is the CI smoke mode: it skips the conventional-reference
//! sweep and runs only the backend grid's 1000-node point with a bounded
//! iteration budget, writing to `results/bench_engine_smoke.json` so the
//! committed full-grid artifact is not clobbered.

use evolve_bench::{
    backend_grid, batch_grid, format_row, header, sweep_measurements, total_engine_stats,
    write_backend_report, BackendPoint, BatchPoint,
};
use evolve_core::{derive_tdg, synthetic};
use evolve_explore::{run_sweep, ModelKind, ModelSpec, ScenarioSpec, SweepConfig, TraceSpec};

fn backend_section(targets: &[usize], budget: u64, reps: usize) -> Vec<BackendPoint> {
    println!("== engine backends: per-iteration ComputeInstant() cost ==");
    println!(
        "{:>7} {:>12} {:>15} {:>15} {:>8}",
        "nodes", "iterations", "worklist ns/it", "compiled ns/it", "ratio"
    );
    let points = backend_grid(targets, budget, reps);
    for p in &points {
        println!(
            "{:>7} {:>12} {:>15.1} {:>15.1} {:>8.2}",
            p.nodes, p.iterations, p.worklist_ns, p.compiled_ns, p.speedup()
        );
    }
    points
}

/// Cost per lane-iteration across batch widths; the `gain` column is the
/// width-1 baseline over this width (> 1 means batching pays).
fn batch_section(targets: &[usize], widths: &[usize], budget: u64, reps: usize) -> Vec<BatchPoint> {
    println!("== batched lanes: per-lane iteration cost vs batch width ==");
    println!(
        "{:>7} {:>6} {:>12} {:>15} {:>7}",
        "nodes", "width", "iterations", "ns/lane-iter", "gain"
    );
    let points = batch_grid(targets, widths, budget, reps);
    for p in &points {
        let baseline = points
            .iter()
            .find(|b| b.nodes == p.nodes && b.width == 1)
            .map_or(p.ns_per_lane_iter, |b| b.ns_per_lane_iter);
        println!(
            "{:>7} {:>6} {:>12} {:>15.1} {:>7.2}",
            p.nodes,
            p.width,
            p.iterations,
            p.ns_per_lane_iter,
            baseline / p.ns_per_lane_iter.max(1e-12),
        );
    }
    points
}

fn write_report(out: &str, points: &[BackendPoint], batch_points: &[BatchPoint]) {
    let path = std::path::Path::new(out);
    write_backend_report(path, points, batch_points).expect("backend report written");
    println!("engine grids written to {}", path.display());
}

fn main() {
    let (flags, positional): (Vec<String>, Vec<String>) =
        std::env::args().skip(1).partition(|a| a.starts_with("--"));
    let quick = flags.iter().any(|f| f == "--quick");
    let mut args = positional.into_iter();
    let tokens: u64 = args
        .next()
        .map(|s| s.parse().expect("tokens must be a number"))
        .unwrap_or(5_000);
    let cost: u64 = args
        .next()
        .map(|s| s.parse().expect("dispatch cost must be a number"))
        .unwrap_or(1_000);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    if quick {
        // CI smoke: the compiled backend must beat the worklist and the
        // batched engine must beat one-lane evaluation at the 1000-node
        // point, on a strictly bounded iteration budget.
        let points = backend_section(&[1_000], 200_000, 2);
        let p = &points[0];
        assert!(
            p.speedup() > 1.0,
            "compiled backend slower than worklist at {} nodes ({:.1} vs {:.1} ns/it)",
            p.nodes,
            p.compiled_ns,
            p.worklist_ns
        );
        let batch_points = batch_section(&[1_000], &[1, 8], 200_000, 2);
        write_report("results/bench_engine_smoke.json", &points, &batch_points);
        let gain = batch_points[0].ns_per_lane_iter / batch_points[1].ns_per_lane_iter.max(1e-12);
        assert!(
            gain > 1.0,
            "batched lanes slower than scalar at {} nodes ({:.1} vs {:.1} ns/lane-iter)",
            batch_points[1].nodes,
            batch_points[1].ns_per_lane_iter,
            batch_points[0].ns_per_lane_iter
        );
        println!(
            "quick mode: compiled backend {:.2}x, batch width 8 {:.2}x at {} nodes — ok",
            p.speedup(),
            gain,
            p.nodes
        );
        return;
    }

    println!("Fig. 5 reproduction — speed-up vs. graph node count");
    println!(
        "stimulus: {tokens} tokens; reference kernel dispatch cost {cost} ns; {threads} sweep threads"
    );
    println!("(paper: curves for X sizes 6/10/20/30; flat < 100 nodes, slow-down > 1000)");
    println!();

    // Pipeline stages chosen so the derived X vector sizes bracket the
    // paper's 6/10/20/30.
    let stage_counts = [2usize, 3, 6, 10];
    let paddings = [0usize, 10, 30, 100, 300, 1_000, 3_000];

    let scenarios: Vec<ScenarioSpec> = stage_counts
        .iter()
        .flat_map(|&stages| {
            paddings.iter().map(move |&padding| ScenarioSpec {
                label: format!("s{stages}p{padding}"),
                model: ModelSpec {
                    kind: ModelKind::Pipeline { stages, base: 200, per_unit: 2 },
                    padding,
                    backend: Default::default(),
                },
                trace: TraceSpec {
                    tokens,
                    min_size: 1,
                    max_size: 64,
                    mean_period: 0,
                    seed: stages as u64,
                },
            })
        })
        .collect();

    let report = run_sweep(
        &scenarios,
        &SweepConfig {
            threads,
            compare_conventional: true,
            reference_dispatch_cost_ns: cost,
            ..SweepConfig::default()
        },
    );
    let measurements = sweep_measurements(&report);

    println!(
        "{:<9} {:>8} {}",
        "X size",
        "padding",
        header().split_once(' ').map_or("", |(_, rest)| rest.trim_start())
    );
    for (scenario, m) in scenarios.iter().zip(&measurements) {
        let (stages, padding) = match scenario.model.kind {
            ModelKind::Pipeline { stages, .. } => (stages, scenario.model.padding),
            _ => unreachable!("fig5 sweeps pipelines only"),
        };
        let x_size = derive_tdg(&synthetic::pipeline(stages, 200, 2).expect("builds").arch)
            .expect("derives")
            .tdg()
            .node_count()
            - 1;
        let row = format_row(m);
        let columns = row.split_once(' ').map_or("", |(_, rest)| rest.trim_start());
        println!("{:<9} {:>8} {}", format!("X={x_size}"), padding, columns);
    }
    println!();

    let totals = total_engine_stats(&measurements);
    println!(
        "sweep: {} scenarios on {} threads in {:.3} ms, {} engines reused;",
        report.scenarios.len(),
        report.threads,
        report.wall.as_secs_f64() * 1e3,
        report.reused_count(),
    );
    println!(
        "engine totals: {} nodes computed, {} arc evaluations, {} iterations",
        totals.nodes_computed, totals.arcs_evaluated, totals.iterations_completed
    );
    println!();

    // The backend comparison underlying the overhead curve: the compiled
    // CSR sweep against the worklist, pure engine cost, no kernel.
    let points = backend_section(&[10, 100, 1_000, 5_000], 2_000_000, 3);
    println!();

    // The batch-width grid: amortizing one schedule walk over B lanes.
    let batch_points = batch_section(
        &[100, 1_000, 5_000],
        &[1, 4, 8, 16, 32],
        2_000_000,
        3,
    );
    write_report("results/bench_engine.json", &points, &batch_points);
}
