//! Reproduces **Fig. 5**: "Evaluation of the influence of the computation
//! method complexity on the achieved simulation speed-up".
//!
//! For several sizes of the evolution-instant vector `X(k)` (pipelines of
//! increasing length), the temporal dependency graph is padded with
//! computation-only nodes and the simulation speed-up of the dynamic
//! computation path is measured against the node count. The paper observes
//! negligible influence below ~100 nodes, degradation beyond, and a
//! slow-down past ~1000 nodes.
//!
//! The whole (stages × padding) grid is one parallel scenario sweep: every
//! cell is a [`ScenarioSpec`] evaluated on a reused engine, with the
//! conventional reference simulation run per cell for the speed-up column.
//! A second grid compares the engine's evaluation backends (worklist vs.
//! compiled CSR sweep) directly — per-iteration `ComputeInstant()` cost at
//! 10/100/1000/5000 nodes — a third measures the periodic
//! steady-state fast-forward (O(1) template replay vs the full sweep), and
//! a fourth measures delta evaluation against a captured sibling cache,
//! and a fifth measures the intra-graph partitioned sweep (barrier and
//! optimistic exchange modes) against the serial compiled sweep on wide
//! padded graphs up to 200 000 nodes; all are written to
//! `results/bench_engine.json`. Partition rows publish within-run ratios
//! (serial and partitioned cost measured seconds apart in one process)
//! because absolute nanoseconds drift with host load.
//!
//! Usage: `fig5 [tokens] [dispatch_cost_ns] [threads] [--quick]
//! [--metrics PATH] [--trace PATH]`
//! (defaults: 5 000 tokens, 1 µs reference calibration, host parallelism).
//! `--quick` is the CI smoke mode: it skips the conventional-reference
//! sweep and runs only the grids' 1000-node points with a bounded
//! iteration budget (asserting compiled > worklist, batched > scalar,
//! fast-forward > sweep, delta > full, that a delta-chained sweep over the
//! default 256-scenario grid is bitwise identical to the full compiled
//! path, that a width-8 batch actually dispatches to the lane-chunked
//! fold kernels, that a 2-worker partitioned sweep matches the serial
//! checksum and rolls back under forced speculation (and beats serial
//! where the host has >= 2 cores), that the detached-observer
//! compiled/worklist cost ratio
//! stays within `EVOLVE_OVERHEAD_TOLERANCE` — default 10% — of the
//! committed `results/bench_engine.json` baseline's ratio, and that the
//! width-8 batching gain stays within `EVOLVE_BATCH_TOLERANCE` — default
//! 10% — of the committed grid's gain), writing to
//! `results/bench_engine_smoke.json` so the committed full-grid artifact
//! is not clobbered. `--metrics PATH` writes a streaming-telemetry
//! snapshot (Prometheus text, or JSON for `.json` paths); `--trace PATH`
//! writes a Chrome trace-event file loadable in Perfetto.

use std::path::PathBuf;

use evolve_bench::{
    backend_grid, batch_grid, delta_grid, ff_grid, format_row, header, partition_grid,
    sweep_measurements, total_engine_stats, write_backend_report, BackendPoint, BatchPoint,
    DeltaPoint, FfPoint, PartitionPoint,
};
use evolve_core::{derive_tdg, synthetic};
use evolve_explore::{
    default_grid, run_sweep, trace_scenario, ModelKind, ModelSpec, ScenarioSpec, SweepConfig,
    SweepReport, TraceSpec,
};

fn backend_section(targets: &[usize], budget: u64, reps: usize) -> Vec<BackendPoint> {
    println!("== engine backends: per-iteration ComputeInstant() cost ==");
    println!(
        "{:>7} {:>12} {:>15} {:>15} {:>8}",
        "nodes", "iterations", "worklist ns/it", "compiled ns/it", "ratio"
    );
    let points = backend_grid(targets, budget, reps);
    for p in &points {
        println!(
            "{:>7} {:>12} {:>15.1} {:>15.1} {:>8.2}",
            p.nodes, p.iterations, p.worklist_ns, p.compiled_ns, p.speedup()
        );
    }
    points
}

/// Cost per lane-iteration across batch widths; the `gain` column is the
/// width-1 baseline over this width (> 1 means batching pays).
fn batch_section(targets: &[usize], widths: &[usize], budget: u64, reps: usize) -> Vec<BatchPoint> {
    println!("== batched lanes: per-lane iteration cost vs batch width ==");
    println!(
        "{:>7} {:>6} {:>12} {:>15} {:>7}",
        "nodes", "width", "iterations", "ns/lane-iter", "gain"
    );
    let points = batch_grid(targets, widths, budget, reps);
    for p in &points {
        let baseline = points
            .iter()
            .find(|b| b.nodes == p.nodes && b.width == 1)
            .map_or(p.ns_per_lane_iter, |b| b.ns_per_lane_iter);
        println!(
            "{:>7} {:>6} {:>12} {:>15.1} {:>7.2}",
            p.nodes,
            p.width,
            p.iterations,
            p.ns_per_lane_iter,
            baseline / p.ns_per_lane_iter.max(1e-12),
        );
    }
    points
}

/// Steady-state replay against the full sweep on a strictly periodic
/// stimulus; the `gain` column is sweep cost over replay cost per
/// iteration (> 1 means fast-forward pays).
fn ff_section(targets: &[usize], budget: u64, reps: usize) -> Vec<FfPoint> {
    println!("== periodic fast-forward: steady-state replay vs compiled sweep ==");
    println!(
        "{:>7} {:>12} {:>15} {:>15} {:>12} {:>8}",
        "nodes", "iterations", "sweep ns/it", "replay ns/it", "replayed", "gain"
    );
    let points = ff_grid(targets, budget, reps);
    for p in &points {
        println!(
            "{:>7} {:>12} {:>15.1} {:>15.1} {:>12} {:>8.2}",
            p.nodes,
            p.iterations,
            p.compiled_ns,
            p.fast_forward_ns,
            p.fast_forwarded_iterations,
            p.gain()
        );
    }
    points
}

/// Partitioned level-parallel sweep against the serial compiled sweep on
/// wide padded graphs; both exchange-mode columns are within-run ratios
/// against the serial baseline measured in the same process, and every
/// partitioned run (including a forced-speculation rollback probe) is
/// bitwise-checked against the serial checksum inside the grid itself.
fn partition_section(
    targets: &[usize],
    thread_counts: &[usize],
    budget: u64,
    reps: usize,
) -> Vec<PartitionPoint> {
    println!("== partitioned sweep: intra-graph workers vs serial compiled ==");
    println!(
        "{:>7} {:>4} {:>12} {:>13} {:>13} {:>13} {:>8} {:>8} {:>9}",
        "nodes", "P", "iterations", "serial ns/it", "barrier ns/it", "optim ns/it", "b gain",
        "o gain", "rollbacks"
    );
    let points = partition_grid(targets, thread_counts, budget, reps);
    for p in &points {
        println!(
            "{:>7} {:>4} {:>12} {:>13.1} {:>13.1} {:>13.1} {:>8.2} {:>8.2} {:>9}",
            p.nodes,
            p.threads,
            p.iterations,
            p.serial_ns,
            p.barrier_ns,
            p.optimistic_ns,
            p.barrier_speedup(),
            p.optimistic_speedup(),
            p.forced_rollbacks,
        );
    }
    points
}

/// Full-evaluation cost against a sibling diffing the captured base cache;
/// the `gain` column is full over delta cost per iteration (> 1 means
/// delta evaluation pays).
fn delta_section(targets: &[usize], budget: u64, reps: usize) -> Vec<DeltaPoint> {
    println!("== delta evaluation: sibling cache replay vs full compiled sweep ==");
    println!(
        "{:>7} {:>12} {:>15} {:>15} {:>8} {:>8}",
        "nodes", "iterations", "full ns/it", "delta ns/it", "reused", "gain"
    );
    let points = delta_grid(targets, budget, reps);
    for p in &points {
        println!(
            "{:>7} {:>12} {:>15.1} {:>15.1} {:>8.2} {:>8.2}",
            p.nodes,
            p.iterations,
            p.compiled_ns,
            p.delta_ns,
            p.reused_fraction,
            p.gain()
        );
    }
    points
}

/// The delta-chained sweep conformance gate: the default sibling-heavy
/// scenario grid evaluated with delta chaining on must be bitwise
/// identical — outcomes and output-instant checksum — to the same sweep
/// with chaining off, and chains must actually have formed.
fn delta_sweep_gate(count: u64, tokens: u64, threads: usize) {
    let scenarios = default_grid(count, tokens);
    let base = SweepConfig { threads, batch_width: 1, ..SweepConfig::default() };
    let on = run_sweep(&scenarios, &SweepConfig { delta: true, ..base.clone() });
    let off = run_sweep(&scenarios, &SweepConfig { delta: false, ..base });
    let checksum = |r: &evolve_explore::SweepReport| {
        r.scenarios
            .iter()
            .flat_map(|s| s.outcome.outputs.iter())
            .fold(0u64, |acc, &(_, y, _)| acc.wrapping_add(y))
    };
    assert!(
        on.delta.lanes_delta > 0,
        "no delta lanes formed on the default grid: {:?}",
        on.delta
    );
    for (a, b) in on.scenarios.iter().zip(&off.scenarios) {
        assert_eq!(
            a.outcome, b.outcome,
            "delta chaining changed scenario {}",
            a.label
        );
    }
    assert_eq!(checksum(&on), checksum(&off), "delta sweep checksum diverged");
    println!(
        "delta sweep gate: {} scenarios, {} chains, {} delta lanes, checksum {:#x} — bitwise ok",
        on.scenarios.len(),
        on.delta.chains_formed,
        on.delta.lanes_delta,
        checksum(&on),
    );
}

fn write_report(
    out: &str,
    points: &[BackendPoint],
    batch_points: &[BatchPoint],
    ff_points: &[FfPoint],
    delta_points: &[DeltaPoint],
    partition_points: &[PartitionPoint],
) {
    let path = std::path::Path::new(out);
    write_backend_report(
        path,
        points,
        batch_points,
        ff_points,
        delta_points,
        partition_points,
    )
    .expect("backend report written");
    println!("engine grids written to {}", path.display());
}

/// A saturating fixed-size pipeline stimulus the fast-forward detector
/// promotes — the exemplar scenario behind `--trace` (and `--metrics` in
/// quick mode), so the exported telemetry demonstrates exact
/// observation-time usage across template replay.
fn telemetry_scenario(tokens: u64) -> ScenarioSpec {
    ScenarioSpec {
        label: "telemetry-pipeline".into(),
        model: ModelSpec {
            kind: ModelKind::Pipeline { stages: 4, base: 100, per_unit: 3 },
            padding: 0,
            backend: Default::default(),
        },
        trace: TraceSpec {
            tokens,
            min_size: 64,
            max_size: 64,
            mean_period: 0,
            seed: 0x5eed,
        },
    }
}

/// Writes the `--metrics` / `--trace` artifacts. `report` is the main
/// sweep's report when one ran (full mode); otherwise a one-scenario
/// telemetry sweep is run on the spot.
fn write_telemetry(
    metrics: Option<&PathBuf>,
    trace: Option<&PathBuf>,
    report: Option<&SweepReport>,
    tokens: u64,
) {
    if let Some(path) = metrics {
        let standalone;
        let report = match report {
            Some(r) => r,
            None => {
                standalone = run_sweep(
                    &[telemetry_scenario(tokens)],
                    &SweepConfig { telemetry: true, ..SweepConfig::default() },
                );
                &standalone
            }
        };
        report.write_metrics(path).expect("metrics written");
        println!("telemetry metrics written to {}", path.display());
    }
    if let Some(path) = trace {
        let (_, collector) = trace_scenario(&telemetry_scenario(tokens), &SweepConfig::default());
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("trace directory created");
        }
        std::fs::write(path, collector.to_chrome_trace().render()).expect("trace written");
        println!("Perfetto trace written to {}", path.display());
    }
}

/// Pulls the 1000-node `(worklist_ns_per_iter, compiled_ns_per_iter)` pair
/// out of the committed full-grid artifact (a flat scan of the `points`
/// array — the report format is written by this binary, so the shape is
/// known).
fn baseline_backend_ns(report: &str) -> Option<(f64, f64)> {
    // Restrict to the backend `points` array: `batch_points`/`ff_points`/
    // `delta_points` repeat the `"nodes":1000` key with different fields
    // (and `delta_points` even repeats `compiled_ns_per_iter`).
    let points = &report[..report.find("\"batch_points\"").unwrap_or(report.len())];
    let at = points.find("\"nodes\":1000,")?;
    let rest = &points[at..];
    let field = |key: &str| -> Option<f64> {
        let val = &rest[rest.find(key)? + key.len()..];
        let end = val.find([',', '}'])?;
        val[..end].parse().ok()
    };
    Some((
        field("\"worklist_ns_per_iter\":")?,
        field("\"compiled_ns_per_iter\":")?,
    ))
}

/// The disabled-observer overhead gate: the quick-mode compiled-to-worklist
/// cost ratio at 1000 nodes must stay within `EVOLVE_OVERHEAD_TOLERANCE`
/// (default 10%) of the committed baseline's ratio. The engines in this run
/// carry the observer hooks but no attached observer, so a regression here
/// means the detached hot path got slower *relative to the worklist
/// reference measured seconds earlier in the same process* — comparing
/// ratios rather than absolute ns/it cancels the uniform wall-clock drift
/// (thermal throttling, host frequency scaling) that makes absolute
/// nanosecond gates unenforceable on shared boxes, while still catching the
/// failure mode this gate exists for: observer hooks leaking cost into the
/// compiled sweep, which does not slow the worklist.
fn overhead_gate(p: &BackendPoint) {
    let tolerance: f64 = std::env::var("EVOLVE_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.10);
    let Ok(report) = std::fs::read_to_string("results/bench_engine.json") else {
        println!("overhead gate skipped: no results/bench_engine.json baseline");
        return;
    };
    let Some((base_worklist, base_compiled)) = baseline_backend_ns(&report) else {
        println!("overhead gate skipped: no 1000-node backend point in the baseline");
        return;
    };
    let measured_ratio = p.compiled_ns / p.worklist_ns.max(1e-12);
    let baseline_ratio = base_compiled / base_worklist.max(1e-12);
    let regression = measured_ratio / baseline_ratio - 1.0;
    assert!(
        regression < tolerance,
        "detached-observer hot path regressed {:.2}% over the recorded baseline \
         (compiled/worklist {measured_ratio:.3} vs {baseline_ratio:.3} at 1000 nodes, \
         tolerance {:.0}%)",
        regression * 100.0,
        tolerance * 100.0,
    );
    println!(
        "overhead gate: compiled/worklist {measured_ratio:.3} vs baseline {baseline_ratio:.3} \
         ({:+.2}%, tolerance {:.0}%) — ok",
        regression * 100.0,
        tolerance * 100.0,
    );
}

/// Pulls `ns_per_lane_iter` for one `(nodes, width)` cell out of the
/// committed artifact's `batch_points` section (same flat-scan approach as
/// [`baseline_compiled_ns`]).
fn baseline_batch_ns(report: &str, nodes: u64, width: u64) -> Option<f64> {
    let start = report.find("\"batch_points\"")?;
    let section = &report[start..];
    let section = &section[..section.find(']').unwrap_or(section.len())];
    let needle = format!("\"nodes\":{nodes},\"width\":{width},");
    let rest = &section[section.find(&needle)?..];
    let key = "\"ns_per_lane_iter\":";
    let val = &rest[rest.find(key)? + key.len()..];
    let end = val.find([',', '}'])?;
    val[..end].parse().ok()
}

/// The batch-gain regression gate, mirroring [`overhead_gate`]'s
/// ratio-of-ratios shape: the quick-mode width-8 batching gain at 1000
/// nodes (width-1 cost over width-8 cost, both measured in this run) must
/// stay within `EVOLVE_BATCH_TOLERANCE` (default 10%) of the committed
/// full-grid baseline's gain, so the lane-chunked kernel cannot silently
/// lose its advantage. Gating the gain rather than absolute ns/lane-iter
/// cancels uniform host drift for the same reason as the overhead gate.
fn batch_gate(scalar_ns: f64, batched_ns: f64) {
    let tolerance: f64 = std::env::var("EVOLVE_BATCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.10);
    let Ok(report) = std::fs::read_to_string("results/bench_engine.json") else {
        println!("batch gate skipped: no results/bench_engine.json baseline");
        return;
    };
    let (Some(base_scalar), Some(base_batched)) = (
        baseline_batch_ns(&report, 1_000, 1),
        baseline_batch_ns(&report, 1_000, 8),
    ) else {
        println!("batch gate skipped: no 1000-node batch points in the baseline");
        return;
    };
    let measured_gain = scalar_ns / batched_ns.max(1e-12);
    let baseline_gain = base_scalar / base_batched.max(1e-12);
    let shortfall = 1.0 - measured_gain / baseline_gain;
    assert!(
        shortfall < tolerance,
        "batched width-8 gain regressed {:.2}% under the recorded baseline \
         ({measured_gain:.2}x vs {baseline_gain:.2}x at 1000 nodes, tolerance {:.0}%)",
        shortfall * 100.0,
        tolerance * 100.0,
    );
    println!(
        "batch gate: width 8 gain {measured_gain:.2}x vs baseline {baseline_gain:.2}x \
         ({:+.2}%, tolerance {:.0}%) — ok",
        -shortfall * 100.0,
        tolerance * 100.0,
    );
}

/// The kernel-dispatch smoke assert: a width-8 batch sweep must actually
/// take the lane-chunked fold kernels, not the per-element fallback.
fn kernel_dispatch_smoke() {
    use evolve_core::BatchedEngine;
    use evolve_des::Time;
    let p = synthetic::pipeline(3, 200, 2).expect("pipeline builds");
    let relations = p.arch.app().relations().len();
    let mut engine =
        BatchedEngine::try_new(derive_tdg(&p.arch).expect("derives"), relations, false, 8)
            .expect("pipelines are batchable");
    let offers: Vec<Option<(Time, u64)>> =
        (0..8).map(|l| Some((Time::from_ticks(l), 4))).collect();
    engine.set_input_batch(0, &offers);
    let dispatch = engine.kernel_dispatch();
    assert!(
        dispatch.chunked_sweeps > 0 && dispatch.scalar_sweeps == 0,
        "width-8 sweep did not take the chunked kernel path: {dispatch:?}"
    );
    println!(
        "kernel dispatch smoke: width 8 on the chunked path (simd level {}) — ok",
        evolve_core::kernel::simd_level()
    );
}

fn main() {
    let mut quick = false;
    let mut metrics: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--metrics" => {
                metrics = Some(PathBuf::from(raw.next().expect("--metrics requires a path")));
            }
            "--trace" => {
                trace = Some(PathBuf::from(raw.next().expect("--trace requires a path")));
            }
            other if other.starts_with("--") => panic!("unknown flag {other}"),
            _ => positional.push(arg),
        }
    }
    let mut args = positional.into_iter();
    let tokens: u64 = args
        .next()
        .map(|s| s.parse().expect("tokens must be a number"))
        .unwrap_or(5_000);
    let cost: u64 = args
        .next()
        .map(|s| s.parse().expect("dispatch cost must be a number"))
        .unwrap_or(1_000);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    if quick {
        // CI smoke: the compiled backend must beat the worklist and the
        // batched engine must beat one-lane evaluation at the 1000-node
        // point. The backend budget matches the full grid's 1000-node
        // configuration (2000 iterations × 3 reps) so the measurement is
        // comparable against the committed baseline for the overhead gate.
        let points = backend_section(&[1_000], 2_000_000, 3);
        let p = &points[0];
        assert!(
            p.speedup() > 1.0,
            "compiled backend slower than worklist at {} nodes ({:.1} vs {:.1} ns/it)",
            p.nodes,
            p.compiled_ns,
            p.worklist_ns
        );
        overhead_gate(p);
        kernel_dispatch_smoke();
        // The batch budget matches the full grid's 1000-node configuration
        // (2000 iterations) so the width-8 point is comparable against the
        // committed baseline for the batch gate.
        let batch_points = batch_section(&[1_000], &[1, 8], 2_000_000, 2);
        let gain = batch_points[0].ns_per_lane_iter / batch_points[1].ns_per_lane_iter.max(1e-12);
        assert!(
            gain > 1.0,
            "batched lanes slower than scalar at {} nodes ({:.1} vs {:.1} ns/lane-iter)",
            batch_points[1].nodes,
            batch_points[1].ns_per_lane_iter,
            batch_points[0].ns_per_lane_iter
        );
        batch_gate(
            batch_points[0].ns_per_lane_iter,
            batch_points[1].ns_per_lane_iter,
        );
        // Fast-forward smoke: the grid itself asserts checksum conformance
        // and that the run promoted; the gate here is the replay benefit.
        let ff_points = ff_section(&[1_000], 1_000_000, 2);
        let f = &ff_points[0];
        assert!(
            f.gain() > 1.0,
            "fast-forward slower than the sweep at {} nodes ({:.1} vs {:.1} ns/it)",
            f.nodes,
            f.fast_forward_ns,
            f.compiled_ns
        );
        // Delta smoke: the grid asserts checksum conformance and frontier
        // collapse internally; the gate here is the sibling-replay benefit.
        let delta_points = delta_section(&[1_000], 2_000_000, 2);
        let d = &delta_points[0];
        assert!(
            d.gain() > 1.0,
            "delta sibling slower than the full sweep at {} nodes ({:.1} vs {:.1} ns/it)",
            d.nodes,
            d.delta_ns,
            d.compiled_ns
        );
        delta_sweep_gate(256, tokens.min(200), threads);
        // Partition smoke: conformance and the forced-rollback probe are
        // asserted inside the grid; the speed gate only applies where the
        // host can actually run two workers at once.
        let partition_points = partition_section(&[5_000], &[1, 2], 500_000, 2);
        let pp = partition_points
            .iter()
            .find(|p| p.threads == 2)
            .expect("2-worker partition point");
        assert!(
            pp.forced_rollbacks > 0,
            "forced speculation observed no rollbacks at {} nodes",
            pp.nodes
        );
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 2 {
            assert!(
                pp.barrier_speedup() > 1.0,
                "2-worker barrier sweep slower than serial on a {cores}-core host \
                 ({:.1} vs {:.1} ns/it at {} nodes)",
                pp.barrier_ns,
                pp.serial_ns,
                pp.nodes
            );
        } else {
            println!(
                "partition speed gate skipped: single-core host \
                 (2-worker ratio {:.2}x, conformance still asserted)",
                pp.barrier_speedup()
            );
        }
        write_report(
            "results/bench_engine_smoke.json",
            &points,
            &batch_points,
            &ff_points,
            &delta_points,
            &partition_points,
        );
        println!(
            "quick mode: compiled backend {:.2}x, batch width 8 {:.2}x, fast-forward {:.2}x, delta {:.2}x at {} nodes — ok",
            p.speedup(),
            gain,
            f.gain(),
            d.gain(),
            p.nodes
        );
        write_telemetry(metrics.as_ref(), trace.as_ref(), None, tokens.min(500));
        return;
    }

    println!("Fig. 5 reproduction — speed-up vs. graph node count");
    println!(
        "stimulus: {tokens} tokens; reference kernel dispatch cost {cost} ns; {threads} sweep threads"
    );
    println!("(paper: curves for X sizes 6/10/20/30; flat < 100 nodes, slow-down > 1000)");
    println!();

    // Pipeline stages chosen so the derived X vector sizes bracket the
    // paper's 6/10/20/30.
    let stage_counts = [2usize, 3, 6, 10];
    let paddings = [0usize, 10, 30, 100, 300, 1_000, 3_000];

    let scenarios: Vec<ScenarioSpec> = stage_counts
        .iter()
        .flat_map(|&stages| {
            paddings.iter().map(move |&padding| ScenarioSpec {
                label: format!("s{stages}p{padding}"),
                model: ModelSpec {
                    kind: ModelKind::Pipeline { stages, base: 200, per_unit: 2 },
                    padding,
                    backend: Default::default(),
                },
                trace: TraceSpec {
                    tokens,
                    min_size: 1,
                    max_size: 64,
                    mean_period: 0,
                    seed: stages as u64,
                },
            })
        })
        .collect();

    let report = run_sweep(
        &scenarios,
        &SweepConfig {
            threads,
            compare_conventional: true,
            reference_dispatch_cost_ns: cost,
            telemetry: metrics.is_some(),
            ..SweepConfig::default()
        },
    );
    let measurements = sweep_measurements(&report);

    println!(
        "{:<9} {:>8} {}",
        "X size",
        "padding",
        header().split_once(' ').map_or("", |(_, rest)| rest.trim_start())
    );
    for (scenario, m) in scenarios.iter().zip(&measurements) {
        let (stages, padding) = match scenario.model.kind {
            ModelKind::Pipeline { stages, .. } => (stages, scenario.model.padding),
            _ => unreachable!("fig5 sweeps pipelines only"),
        };
        let x_size = derive_tdg(&synthetic::pipeline(stages, 200, 2).expect("builds").arch)
            .expect("derives")
            .tdg()
            .node_count()
            - 1;
        let row = format_row(m);
        let columns = row.split_once(' ').map_or("", |(_, rest)| rest.trim_start());
        println!("{:<9} {:>8} {}", format!("X={x_size}"), padding, columns);
    }
    println!();

    let totals = total_engine_stats(&measurements);
    println!(
        "sweep: {} scenarios on {} threads in {:.3} ms, {} engines reused;",
        report.scenarios.len(),
        report.threads,
        report.wall.as_secs_f64() * 1e3,
        report.reused_count(),
    );
    println!(
        "engine totals: {} nodes computed, {} arc evaluations, {} iterations",
        totals.nodes_computed, totals.arcs_evaluated, totals.iterations_completed
    );
    println!();

    // The backend comparison underlying the overhead curve: the compiled
    // CSR sweep against the worklist, pure engine cost, no kernel.
    let points = backend_section(&[10, 100, 1_000, 5_000], 2_000_000, 3);
    println!();

    // The batch-width grid: amortizing one schedule walk over B lanes.
    // The 50 000-node point exercises the level-blocked traversal at a
    // scale where accumulator rows no longer fit any cache level.
    let batch_points = batch_section(
        &[100, 1_000, 5_000, 50_000],
        &[1, 4, 8, 16, 32],
        2_000_000,
        3,
    );
    println!();

    // The steady-state headline: once promoted, an iteration is answered by
    // O(1) template replay — the budget puts the 1000-node point at 10 000
    // iterations, the acceptance configuration for the >= 5x replay gain.
    let ff_points = ff_section(&[10, 100, 1_000, 5_000], 10_000_000, 3);
    println!();

    // The sibling-heavy sweep headline: a delta sibling answers each
    // iteration from the base cache instead of sweeping the graph.
    let delta_points = delta_section(&[10, 100, 1_000, 5_000], 2_000_000, 3);
    println!();

    // The partitioned-sweep grid: intra-graph level-parallel workers on
    // wide padded graphs, up to the 200 000-node point where one sweep
    // has enough per-level work to amortize the exchange cost.
    let partition_points = partition_section(&[5_000, 50_000, 200_000], &[1, 2, 4, 8], 4_000_000, 2);
    delta_sweep_gate(256, tokens.min(200), threads);
    write_report(
        "results/bench_engine.json",
        &points,
        &batch_points,
        &ff_points,
        &delta_points,
        &partition_points,
    );
    write_telemetry(metrics.as_ref(), trace.as_ref(), Some(&report), tokens.min(500));
}
