//! Reproduces **Fig. 5**: "Evaluation of the influence of the computation
//! method complexity on the achieved simulation speed-up".
//!
//! For several sizes of the evolution-instant vector `X(k)` (pipelines of
//! increasing length), the temporal dependency graph is padded with
//! computation-only nodes and the simulation speed-up of the dynamic
//! computation path is measured against the node count. The paper observes
//! negligible influence below ~100 nodes, degradation beyond, and a
//! slow-down past ~1000 nodes.
//!
//! The whole (stages × padding) grid is one parallel scenario sweep: every
//! cell is a [`ScenarioSpec`] evaluated on a reused engine, with the
//! conventional reference simulation run per cell for the speed-up column.
//!
//! Usage: `fig5 [tokens] [dispatch_cost_ns] [threads]`
//! (defaults: 5 000 tokens, 1 µs reference calibration, host parallelism).

use evolve_bench::{format_row, header, sweep_measurements, total_engine_stats};
use evolve_core::{derive_tdg, synthetic};
use evolve_explore::{run_sweep, ModelKind, ModelSpec, ScenarioSpec, SweepConfig, TraceSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let tokens: u64 = args
        .next()
        .map(|s| s.parse().expect("tokens must be a number"))
        .unwrap_or(5_000);
    let cost: u64 = args
        .next()
        .map(|s| s.parse().expect("dispatch cost must be a number"))
        .unwrap_or(1_000);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    println!("Fig. 5 reproduction — speed-up vs. graph node count");
    println!(
        "stimulus: {tokens} tokens; reference kernel dispatch cost {cost} ns; {threads} sweep threads"
    );
    println!("(paper: curves for X sizes 6/10/20/30; flat < 100 nodes, slow-down > 1000)");
    println!();

    // Pipeline stages chosen so the derived X vector sizes bracket the
    // paper's 6/10/20/30.
    let stage_counts = [2usize, 3, 6, 10];
    let paddings = [0usize, 10, 30, 100, 300, 1_000, 3_000];

    let scenarios: Vec<ScenarioSpec> = stage_counts
        .iter()
        .flat_map(|&stages| {
            paddings.iter().map(move |&padding| ScenarioSpec {
                label: format!("s{stages}p{padding}"),
                model: ModelSpec {
                    kind: ModelKind::Pipeline { stages, base: 200, per_unit: 2 },
                    padding,
                },
                trace: TraceSpec {
                    tokens,
                    min_size: 1,
                    max_size: 64,
                    mean_period: 0,
                    seed: stages as u64,
                },
            })
        })
        .collect();

    let report = run_sweep(
        &scenarios,
        &SweepConfig {
            threads,
            compare_conventional: true,
            reference_dispatch_cost_ns: cost,
            ..SweepConfig::default()
        },
    );
    let measurements = sweep_measurements(&report);

    println!(
        "{:<9} {:>8} {}",
        "X size",
        "padding",
        header().split_once(' ').map_or("", |(_, rest)| rest.trim_start())
    );
    for (scenario, m) in scenarios.iter().zip(&measurements) {
        let (stages, padding) = match scenario.model.kind {
            ModelKind::Pipeline { stages, .. } => (stages, scenario.model.padding),
            _ => unreachable!("fig5 sweeps pipelines only"),
        };
        let x_size = derive_tdg(&synthetic::pipeline(stages, 200, 2).expect("builds").arch)
            .expect("derives")
            .tdg
            .node_count()
            - 1;
        let row = format_row(m);
        let columns = row.split_once(' ').map_or("", |(_, rest)| rest.trim_start());
        println!("{:<9} {:>8} {}", format!("X={x_size}"), padding, columns);
    }
    println!();

    let totals = total_engine_stats(&measurements);
    println!(
        "sweep: {} scenarios on {} threads in {:.3} ms, {} engines reused;",
        report.scenarios.len(),
        report.threads,
        report.wall.as_secs_f64() * 1e3,
        report.reused_count(),
    );
    println!(
        "engine totals: {} nodes computed, {} arc evaluations, {} iterations",
        totals.nodes_computed, totals.arcs_evaluated, totals.iterations_completed
    );
}
