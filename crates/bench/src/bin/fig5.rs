//! Reproduces **Fig. 5**: "Evaluation of the influence of the computation
//! method complexity on the achieved simulation speed-up".
//!
//! For several sizes of the evolution-instant vector `X(k)` (pipelines of
//! increasing length), the temporal dependency graph is padded with
//! computation-only nodes and the simulation speed-up of the equivalent
//! model is measured against the node count. The paper observes negligible
//! influence below ~100 nodes, degradation beyond, and a slow-down past
//! ~1000 nodes.
//!
//! Usage: `fig5 [tokens] [dispatch_cost_ns]` (defaults: 5 000 tokens, 1 µs).

use evolve_bench::{measure, Fidelity};
use evolve_core::{derive_tdg, synthetic};
use evolve_model::{varying_sizes, Environment, Stimulus};

fn main() {
    let mut args = std::env::args().skip(1);
    let tokens: u64 = args
        .next()
        .map(|s| s.parse().expect("tokens must be a number"))
        .unwrap_or(5_000);
    let cost: u64 = args
        .next()
        .map(|s| s.parse().expect("dispatch cost must be a number"))
        .unwrap_or(1_000);

    println!("Fig. 5 reproduction — speed-up vs. graph node count");
    println!("stimulus: {tokens} tokens; kernel dispatch cost {cost} ns");
    println!("(paper: curves for X sizes 6/10/20/30; flat < 100 nodes, slow-down > 1000)");
    println!();

    // Pipeline stages chosen so the derived X vector sizes bracket the
    // paper's 6/10/20/30.
    let stage_counts = [2usize, 3, 6, 10];
    let paddings = [0usize, 10, 30, 100, 300, 1_000, 3_000];

    println!(
        "{:<10} {:>8} {:>9} {:>12} {:>12} {:>9}",
        "X size", "padding", "nodes", "conv (ms)", "equiv (ms)", "speedup"
    );
    for stages in stage_counts {
        let p = synthetic::pipeline(stages, 200, 2).expect("pipeline builds");
        let x_size = derive_tdg(&p.arch).expect("derives").tdg.node_count() - 1;
        let env = Environment::new().stimulus(
            p.input,
            Stimulus::saturating(tokens, varying_sizes(1, 64, stages as u64)),
        );
        for padding in paddings {
            let m = measure(
                format!("X={x_size}"),
                &p.arch,
                &env,
                Fidelity::Observing,
                cost,
                padding,
            );
            println!(
                "{:<10} {:>8} {:>9} {:>12.3} {:>12.3} {:>9.2}{}",
                m.label,
                padding,
                m.nodes,
                m.conventional_wall.as_secs_f64() * 1e3,
                m.equivalent_wall.as_secs_f64() * 1e3,
                m.speedup(),
                if m.accurate { "" } else { "  MISMATCH" },
            );
        }
        println!();
    }
}
