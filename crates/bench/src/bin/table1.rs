//! Reproduces **Table I**: "Measurement of achieved simulation speed-up on
//! distinct architecture models".
//!
//! The paper's four rows are the didactic example (Fig. 1) chained ×1..×4,
//! each simulated with 20 000 data items of varying size through `M1`, in
//! the conventional and the dynamic-computation form. Reported per row:
//! execution time, event ratio, simulation speed-up, and the node count of
//! the temporal dependency graph.
//!
//! The four rows are one scenario sweep: each chain length is a
//! [`ScenarioSpec`] evaluated by driving a reused engine directly, with the
//! conventional reference simulated per row (optionally calibrated to the
//! paper's heavyweight-simulator regime).
//!
//! Usage: `table1 [tokens] [dispatch_cost_ns] [threads]`
//! (defaults: 20 000 tokens; both native and 1 µs-calibrated regimes).

use evolve_bench::{format_row, header, sweep_measurements, total_engine_stats};
use evolve_explore::{run_sweep, ModelKind, ModelSpec, ScenarioSpec, SweepConfig, TraceSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let tokens: u64 = args
        .next()
        .map(|s| s.parse().expect("tokens must be a number"))
        .unwrap_or(20_000);
    let costs: Vec<u64> = match args.next() {
        Some(s) => vec![s.parse().expect("dispatch cost must be a number")],
        None => vec![0, 1_000],
    };
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    println!("Table I reproduction — didactic example chained x1..x4");
    println!("stimulus: {tokens} data items with varying sizes through M1; {threads} sweep threads");
    println!();

    let scenarios: Vec<ScenarioSpec> = (1..=4usize)
        .map(|stages| ScenarioSpec {
            label: format!("example {stages}"),
            model: ModelSpec {
                kind: ModelKind::Didactic { stages },
                padding: 0,
                backend: Default::default(),
            },
            trace: TraceSpec {
                tokens,
                min_size: 1,
                max_size: 256,
                mean_period: 0,
                seed: stages as u64,
            },
        })
        .collect();

    for cost in costs {
        let regime = if cost == 0 {
            "native reference kernel (~50 ns/dispatch)".to_string()
        } else {
            format!("calibrated reference kernel ({cost} ns/dispatch — heavyweight-simulator regime)")
        };
        println!("== {regime} ==");
        println!("{}", header());
        let report = run_sweep(
            &scenarios,
            &SweepConfig {
                threads,
                compare_conventional: true,
                reference_dispatch_cost_ns: cost,
                ..SweepConfig::default()
            },
        );
        let measurements = sweep_measurements(&report);
        for m in &measurements {
            println!("{}", format_row(m));
        }
        let totals = total_engine_stats(&measurements);
        println!(
            "engine totals: {} nodes computed, {} arc evaluations, {} iterations",
            totals.nodes_computed, totals.arcs_evaluated, totals.iterations_completed
        );
        println!();
    }
    println!("paper reference:   time 22/41.2/59.4/80.2 s, event ratio 2.33/4.66/7/9.33,");
    println!("                   speed-up 2.27/4.47/6.38/8.35, nodes 10/19/28/37");
}
