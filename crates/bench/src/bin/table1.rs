//! Reproduces **Table I**: "Measurement of achieved simulation speed-up on
//! distinct architecture models".
//!
//! The paper's four rows are the didactic example (Fig. 1) chained ×1..×4,
//! each simulated with 20 000 data items of varying size through `M1`, in
//! the conventional and the equivalent form. Reported per row: execution
//! time, event ratio, simulation speed-up, and the node count of the
//! temporal dependency graph.
//!
//! Usage: `table1 [tokens] [dispatch_cost_ns]`
//! (defaults: 20 000 tokens; both native and 1 µs-calibrated regimes).

use evolve_bench::{format_row, header, measure, Fidelity};
use evolve_model::{didactic, varying_sizes, Environment, Stimulus};

fn main() {
    let mut args = std::env::args().skip(1);
    let tokens: u64 = args
        .next()
        .map(|s| s.parse().expect("tokens must be a number"))
        .unwrap_or(20_000);
    let costs: Vec<u64> = match args.next() {
        Some(s) => vec![s.parse().expect("dispatch cost must be a number")],
        None => vec![0, 1_000],
    };

    println!("Table I reproduction — didactic example chained x1..x4");
    println!("stimulus: {tokens} data items with varying sizes through M1");
    println!();

    for cost in costs {
        let regime = if cost == 0 {
            "native kernel (~50 ns/dispatch)".to_string()
        } else {
            format!("calibrated kernel ({cost} ns/dispatch — heavyweight-simulator regime)")
        };
        for fidelity in [Fidelity::Observing, Fidelity::BoundaryOnly] {
            println!("== {regime}, {fidelity:?} equivalent model ==");
            println!("{}", header());
            for stages in 1..=4 {
                let d = didactic::chained(stages, didactic::Params::default())
                    .expect("didactic architecture builds");
                let env = Environment::new().stimulus(
                    d.input(),
                    Stimulus::saturating(tokens, varying_sizes(1, 256, stages as u64)),
                );
                let m = measure(
                    format!("example {stages}"),
                    &d.arch,
                    &env,
                    fidelity,
                    cost,
                    0,
                );
                println!("{}", format_row(&m));
            }
            println!();
        }
    }
    println!("paper reference:   time 22/41.2/59.4/80.2 s, event ratio 2.33/4.66/7/9.33,");
    println!("                   speed-up 2.27/4.47/6.38/8.35, nodes 10/19/28/37");
}
