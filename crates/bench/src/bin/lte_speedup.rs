//! Reproduces the **Section V measurement**: "A simulation speed-up by a
//! factor of 4 has been measured for the simulation of 20000 data symbols,
//! whereas the ratio of events between models is 4.2."
//!
//! Usage: `lte_speedup [symbols] [dispatch_cost_ns]`
//! (defaults: 20 000 symbols; native and 1 µs-calibrated regimes).

use evolve_bench::{format_row, header, measure, Fidelity};
use evolve_core::{derive_tdg, simplify};
use evolve_lte::{receiver, symbol_stimulus, Scenario};
use evolve_model::Environment;

fn main() {
    let mut args = std::env::args().skip(1);
    let symbols: u64 = args
        .next()
        .map(|s| s.parse().expect("symbols must be a number"))
        .unwrap_or(20_000);
    let costs: Vec<u64> = match args.next() {
        Some(s) => vec![s.parse().expect("dispatch cost must be a number")],
        None => vec![0, 1_000],
    };

    let rx = receiver(Scenario::default()).expect("receiver builds");
    let env = Environment::new().stimulus(rx.input, symbol_stimulus(rx.scenario, symbols, 42));

    let derived = derive_tdg(&rx.arch).expect("derives");
    let reduced = simplify::simplify(
        derived.tdg(),
        &simplify::Options {
            preserve_observations: false,
        },
    );
    println!("Section V reproduction — LTE receiver, {symbols} data symbols");
    println!(
        "graph: {} nodes derived, {} after boundary reduction (paper: 11)",
        derived.tdg().node_count(),
        reduced.node_count()
    );
    println!("paper reference: speed-up 4, event ratio 4.2");
    println!();

    for cost in costs {
        let regime = if cost == 0 { "native" } else { "calibrated" };
        println!("== {regime} kernel regime ({cost} ns/dispatch) ==");
        println!("{}", header());
        for fidelity in [Fidelity::Observing, Fidelity::BoundaryOnly] {
            let m = measure(
                format!("lte {fidelity:?}"),
                &rx.arch,
                &env,
                fidelity,
                cost,
                0,
            );
            println!("{}", format_row(&m));
        }
        println!();
    }
}
