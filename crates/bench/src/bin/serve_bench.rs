//! `serve-bench` — closed-loop many-client load driver for the `evolved`
//! evaluation daemon.
//!
//! Spawns N client threads, each pipelining one request at a time against
//! the daemon (closed loop: send, wait for the answer, send again), all
//! asking for the *same* `ModelSpec` so the affinity batcher can fill
//! lockstep lanes. The run has two phases measured back to back in the
//! same process:
//!
//! 1. **affinity** — the daemon under test (an external one via
//!    `--connect`, else an in-process server with default batching
//!    configuration);
//! 2. **naive** — an in-process server in `naive` mode: one fresh engine
//!    per request, no batching, no caches — the per-request-engine
//!    baseline a service without affinity batching would run.
//!
//! The headline number is the *within-run ratio* of sustained
//! scenarios/second between the two phases (absolute throughput on a
//! shared host drifts; the ratio isolates the serving strategy). Full
//! runs gate on ratio ≥ 2 and publish `results/bench_serve.json`;
//! `--quick` gates on ratio > 1 plus lanes-per-batch > 1 and is what
//! `ci.sh` drives against a real `evolved` process.
//!
//! `--large-model` flips the workload to the anti-affinity regime: one
//! wide partitioned-backend model too parallel for lockstep batching
//! (every lane ejects to the scalar path), and the two phases become an
//! in-process daemon with intra-graph partition workers vs the same
//! daemon sweeping serially. The gate is again the within-run ratio —
//! and only applies where the host has >= 2 cores, because partition
//! workers on one core merely take turns.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use evolve_core::EvalBackend;
use evolve_explore::json::Json;
use evolve_explore::{ModelKind, ModelSpec, TraceSpec};
use evolve_serve::{
    Bind, EvalRequest, ModelRef, Request, Response, ServeClient, ServeConfig, Server, TracePayload,
};

const USAGE: &str = "\
serve-bench — closed-loop load driver for the evolved evaluation daemon

USAGE:
    serve-bench [OPTIONS]

OPTIONS:
    --quick              smoke mode: short phases, relaxed ratio gate (> 1x)
    --large-model        anti-affinity workload: one wide partitioned-backend
                         model; compares partition workers vs serial sweeps
    --connect TARGET     drive an external daemon (tcp:HOST:PORT or unix:PATH)
                         for the affinity phase instead of an in-process one
    --metrics ADDR       HOST:PORT of the daemon's /metrics listener to check
                         (implied for the in-process server)
    --dump-trace PATH    after phase 1, request a flight-recorder Dump from
                         the live daemon, validate it (JSON parses, >= 1 span
                         per serve phase), and write it to PATH
    --clients N          closed-loop client threads per phase [16; 8 in quick]
    --duration-ms N      measured duration per phase [2500; 400 in quick]
    --out PATH           report path [results/bench_serve.json;
                         results/bench_serve_smoke.json in quick]
    -h, --help           print this help
";

/// The shared affinity workload: every client asks for this spec, so one
/// affinity group forms per shard and lanes fill to the SIMD chunk width.
fn workload_spec() -> ModelSpec {
    ModelSpec {
        kind: ModelKind::Pipeline {
            stages: 8,
            base: 60,
            per_unit: 1,
        },
        padding: 64,
        backend: EvalBackend::Compiled,
    }
}

/// The anti-affinity workload: a wide chained-padding graph on the
/// partitioned backend. Every request ejects from lockstep batching and
/// is answered by one intra-graph level-parallel sweep.
fn large_model_spec() -> ModelSpec {
    ModelSpec {
        kind: ModelKind::WidePipeline {
            stages: 6,
            base: 80,
            per_unit: 2,
            chains: 32,
        },
        padding: 4_096,
        backend: EvalBackend::CompiledParallel,
    }
}

const TOKENS_PER_REQUEST: u64 = 24;

fn request(id: u64, spec: &ModelSpec) -> Request {
    Request::Eval(EvalRequest {
        id,
        model: ModelRef::Inline(spec.clone()),
        trace: TracePayload::Generated(TraceSpec {
            tokens: TOKENS_PER_REQUEST,
            min_size: 1,
            max_size: 64,
            mean_period: 300,
            seed: id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }),
    })
}

#[derive(Clone, Copy, Debug, Default)]
struct Tally {
    responses: u64,
    busy: u64,
    batched: u64,
    lanes: u64,
}

impl Tally {
    fn add(&mut self, other: Tally) {
        self.responses += other.responses;
        self.busy += other.busy;
        self.batched += other.batched;
        self.lanes += other.lanes;
    }

    fn lanes_per_batched_response(&self) -> f64 {
        if self.batched == 0 {
            0.0
        } else {
            self.lanes as f64 / self.batched as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Phase {
    tally: Tally,
    wall: Duration,
}

impl Phase {
    fn scenarios_per_second(&self) -> f64 {
        self.tally.responses as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(self) -> Json {
        Json::object([
            ("responses", Json::U64(self.tally.responses)),
            ("busy", Json::U64(self.tally.busy)),
            ("batched_responses", Json::U64(self.tally.batched)),
            (
                "lanes_per_batch",
                Json::F64(self.tally.lanes_per_batched_response()),
            ),
            ("wall_ms", Json::F64(self.wall.as_secs_f64() * 1e3)),
            (
                "scenarios_per_second",
                Json::F64(self.scenarios_per_second()),
            ),
        ])
    }
}

/// Runs `clients` closed-loop threads against `target` for `duration`,
/// then stops them at the next response boundary and folds the tallies.
/// The wall clock covers spawn-to-join so the scenarios/second figure is
/// sustained throughput, not a burst measurement.
fn drive_clients(target: &str, spec: &ModelSpec, clients: usize, duration: Duration) -> Phase {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            let target = target.to_string();
            let spec = spec.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = ServeClient::connect(&target).expect("serve-bench connect");
                let mut tally = Tally::default();
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let id = ((c as u64) << 32) | seq;
                    seq += 1;
                    match client.call(&request(id, &spec)) {
                        Ok(Response::EvalOk(ok)) => {
                            assert_eq!(ok.id, id, "response for the wrong request");
                            tally.responses += 1;
                            if ok.batched {
                                tally.batched += 1;
                                tally.lanes += u64::from(ok.lanes_in_batch);
                            }
                        }
                        Ok(Response::Busy { .. }) => tally.busy += 1,
                        Ok(other) => panic!("unexpected response: {other:?}"),
                        Err(err) => panic!("client error: {err}"),
                    }
                }
                tally
            })
        })
        .collect();
    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut tally = Tally::default();
    for join in joins {
        tally.add(join.join().expect("client thread"));
    }
    Phase {
        tally,
        wall: start.elapsed(),
    }
}

fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

struct Options {
    quick: bool,
    large_model: bool,
    connect: Option<String>,
    metrics: Option<String>,
    dump_trace: Option<String>,
    clients: usize,
    duration: Duration,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut quick = false;
    let mut large_model = false;
    let mut connect = None;
    let mut metrics = None;
    let mut dump_trace = None;
    let mut clients = None;
    let mut duration_ms = None;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--quick" => quick = true,
            "--large-model" => large_model = true,
            "--connect" => connect = Some(value("--connect")?),
            "--metrics" => metrics = Some(value("--metrics")?),
            "--dump-trace" => dump_trace = Some(value("--dump-trace")?),
            "--clients" => {
                clients = Some(
                    value("--clients")?
                        .parse::<usize>()
                        .map_err(|e| format!("--clients: {e}"))?,
                );
            }
            "--duration-ms" => {
                duration_ms = Some(
                    value("--duration-ms")?
                        .parse::<u64>()
                        .map_err(|e| format!("--duration-ms: {e}"))?,
                );
            }
            "--out" => out = Some(value("--out")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if large_model && connect.is_some() {
        return Err("--large-model runs both phases in-process; drop --connect".into());
    }
    Ok(Options {
        quick,
        large_model,
        connect,
        metrics,
        dump_trace,
        clients: clients.unwrap_or(if quick { 8 } else { 16 }),
        duration: Duration::from_millis(duration_ms.unwrap_or(if quick { 400 } else { 2500 })),
        out: out.unwrap_or_else(|| {
            match (large_model, quick) {
                (true, true) => "results/bench_serve_large_smoke.json".into(),
                (true, false) => "results/bench_serve_large.json".into(),
                (false, true) => "results/bench_serve_smoke.json".into(),
                (false, false) => "results/bench_serve.json".into(),
            }
        }),
    })
}

fn write_report(path: &str, doc: &Json) {
    let path = Path::new(path);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("results directory");
    }
    let mut body = doc.render();
    body.push('\n');
    std::fs::write(path, body).expect("report written");
    println!("serve report written to {}", path.display());
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("serve-bench: {err}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    let spec = if opts.large_model {
        large_model_spec()
    } else {
        workload_spec()
    };
    // Partition workers for the large-model phase 1: enough to matter,
    // capped so client threads still get cores to run on.
    let partition_workers = cores.clamp(2, 4);
    let phase1_label = if opts.large_model { "partitioned" } else { "affinity" };
    let phase2_label = if opts.large_model { "serial" } else { "naive" };

    // Phase 1: the daemon under test — external if --connect was given,
    // else an in-process server (default batching configuration, plus
    // intra-graph partition workers in --large-model mode).
    let mut local = None;
    let mut metrics = opts.metrics.clone();
    let affinity_target = match &opts.connect {
        Some(target) => target.clone(),
        None => {
            let config = ServeConfig {
                partition_threads: if opts.large_model { partition_workers } else { 1 },
                ..ServeConfig::default()
            };
            let server = Server::start(
                config,
                &[Bind::Tcp("127.0.0.1:0".into())],
                Some("127.0.0.1:0"),
            )
            .expect("in-process phase-1 server");
            let target = format!("tcp:{}", server.tcp_addr().expect("tcp bound"));
            if metrics.is_none() {
                metrics = server.metrics_addr().map(|a| a.to_string());
            }
            local = Some(server);
            target
        }
    };
    println!(
        "{phase1_label} phase: {} clients x {} ms against {affinity_target}",
        opts.clients,
        opts.duration.as_millis()
    );
    let affinity = drive_clients(&affinity_target, &spec, opts.clients, opts.duration);

    // Flight-recorder dump from the still-live phase-1 daemon: the trace
    // must be valid JSON and must contain at least one span for every
    // serve lifecycle phase before it is written out.
    if let Some(path) = &opts.dump_trace {
        let mut client = ServeClient::connect(&affinity_target).expect("dump-trace connect");
        let json = match client.call(&Request::Dump) {
            Ok(Response::Trace { json }) => json,
            Ok(other) => panic!("Dump answered with {other:?}"),
            Err(err) => panic!("Dump failed: {err}"),
        };
        assert!(
            evolve_obs::json::parses(&json),
            "flight-recorder dump is not valid JSON"
        );
        for phase in ["decode", "queue_wait", "batch_form", "eval", "encode", "write"] {
            assert!(
                json.contains(&format!("\"name\":\"{phase}\"")),
                "trace dump has no {phase:?} span"
            );
        }
        if let Some(parent) = Path::new(path.as_str()).parent() {
            std::fs::create_dir_all(parent).expect("trace directory");
        }
        std::fs::write(path, &json).expect("trace written");
        println!("flight-recorder trace ({} bytes) written to {path}", json.len());
    }

    // Scrape /metrics while the affinity daemon is still alive.
    let metrics_ok = match &metrics {
        Some(addr) => {
            let body = http_get(addr, "/metrics").expect("metrics listener reachable");
            let parses = body.contains("evolve_serve_requests_total")
                && body.contains("evolve_serve_rejected_total")
                && body.contains("# TYPE evolve_serve_requests_total counter");
            println!(
                "metrics scrape from {addr}: {}",
                if parses { "ok" } else { "MISSING FAMILIES" }
            );
            Some(parses)
        }
        None => {
            println!("metrics scrape skipped (no --metrics and external daemon)");
            None
        }
    };
    if let Some(server) = local.take() {
        server.shutdown_and_join();
    }

    // Phase 2: the baseline, always in-process so the ratio is measured
    // within this run on this host — naive per-request engines for the
    // affinity workload, the serial compiled sweep (same daemon, no
    // partition workers) for the large model.
    let naive_server = Server::start(
        ServeConfig {
            naive: !opts.large_model,
            ..ServeConfig::default()
        },
        &[Bind::Tcp("127.0.0.1:0".into())],
        None,
    )
    .expect("in-process phase-2 server");
    let naive_target = format!("tcp:{}", naive_server.tcp_addr().expect("tcp bound"));
    println!(
        "{phase2_label} phase:    {} clients x {} ms against {naive_target}",
        opts.clients,
        opts.duration.as_millis()
    );
    let naive = drive_clients(&naive_target, &spec, opts.clients, opts.duration);
    naive_server.shutdown_and_join();

    // Recorder overhead: two long-lived in-process servers with identical
    // batching configuration, differing only in whether the flight
    // recorder is attached. Both are booted and warmed once, then driven
    // in three temporally-adjacent detached→attached pairs; the gate uses
    // the *median* per-pair ratio. Pairing cancels slow host drift (both
    // sides of a pair see the same machine state) and the median tolerates
    // one noise-spiked pair — absolute scenarios/second is never compared
    // across time. Detached leads each pair so warmup asymmetry never
    // favours the recorder. Skipped in --large-model mode, where the
    // partitioned phases already dominate the wall-clock budget.
    let recorder_phases = (!opts.large_model).then(|| {
        let boot = |attach: bool| {
            Server::start(
                ServeConfig {
                    flight_recorder: attach,
                    ..ServeConfig::default()
                },
                &[Bind::Tcp("127.0.0.1:0".into())],
                None,
            )
            .expect("in-process recorder-overhead server")
        };
        let detached_srv = boot(false);
        let attached_srv = boot(true);
        let d_target = format!("tcp:{}", detached_srv.tcp_addr().expect("tcp bound"));
        let a_target = format!("tcp:{}", attached_srv.tcp_addr().expect("tcp bound"));
        let warmup = opts.duration / 4;
        drive_clients(&d_target, &spec, opts.clients, warmup);
        drive_clients(&a_target, &spec, opts.clients, warmup);
        let fold = |acc: Option<Phase>, p: Phase| {
            Some(match acc {
                None => p,
                Some(mut acc) => {
                    acc.tally.add(p.tally);
                    acc.wall += p.wall;
                    acc
                }
            })
        };
        let (mut detached, mut attached) = (None, None);
        let mut ratios = Vec::new();
        for _ in 0..5 {
            let d = drive_clients(&d_target, &spec, opts.clients, opts.duration);
            let a = drive_clients(&a_target, &spec, opts.clients, opts.duration);
            ratios.push(a.scenarios_per_second() / d.scenarios_per_second().max(1e-9));
            detached = fold(detached, d);
            attached = fold(attached, a);
        }
        detached_srv.shutdown_and_join();
        attached_srv.shutdown_and_join();
        let (detached, attached) = (detached.expect("5 pairs"), attached.expect("5 pairs"));
        ratios.sort_by(f64::total_cmp);
        let overhead_ratio = ratios[ratios.len() / 2];
        println!(
            "recorder overhead: attached {:8.1} / detached {:8.1} scenarios/s \
             (pair ratios {ratios:.3?}, median {overhead_ratio:.3}x within-run)",
            attached.scenarios_per_second(),
            detached.scenarios_per_second()
        );
        (detached, attached, overhead_ratio)
    });

    let ratio = affinity.scenarios_per_second() / naive.scenarios_per_second().max(1e-9);
    let lanes_per_batch = affinity.tally.lanes_per_batched_response();
    println!(
        "{phase1_label}: {:8.1} scenarios/s ({} responses, {:.2} lanes/batch)",
        affinity.scenarios_per_second(),
        affinity.tally.responses,
        lanes_per_batch
    );
    println!(
        "{phase2_label}:    {:8.1} scenarios/s ({} responses)",
        naive.scenarios_per_second(),
        naive.tally.responses
    );
    println!("within-run ratio ({phase1_label} / {phase2_label}): {ratio:.2}x");

    let mut doc = Json::object([
        ("benchmark", Json::str("serve")),
        ("mode", Json::str(if opts.quick { "quick" } else { "full" })),
        (
            "workload_mode",
            Json::str(if opts.large_model { "large-model" } else { "affinity" }),
        ),
        ("clients", Json::U64(opts.clients as u64)),
        ("duration_ms", Json::U64(opts.duration.as_millis() as u64)),
        (
            "workload",
            Json::object([
                (
                    "model",
                    Json::str(if opts.large_model {
                        "wide-pipeline stages=6 base=80 per_unit=2 chains=32 \
                         padding=4096 backend=compiled-parallel"
                    } else {
                        "pipeline stages=8 base=60 per_unit=1 padding=64"
                    }),
                ),
                ("tokens_per_request", Json::U64(TOKENS_PER_REQUEST)),
            ]),
        ),
        (
            "partition_workers",
            Json::U64(if opts.large_model { partition_workers as u64 } else { 0 }),
        ),
        ("host_cores", Json::U64(cores as u64)),
        (phase1_label, affinity.to_json()),
        (phase2_label, naive.to_json()),
        ("speedup", Json::F64(ratio)),
        ("lanes_per_batch", Json::F64(lanes_per_batch)),
    ]);
    if let (Json::Object(fields), Some((detached, attached, overhead_ratio))) =
        (&mut doc, &recorder_phases)
    {
        fields.push(("recorder_detached".into(), detached.to_json()));
        fields.push(("recorder_attached".into(), attached.to_json()));
        fields.push(("recorder_overhead_ratio".into(), Json::F64(*overhead_ratio)));
    }
    write_report(&opts.out, &doc);

    // Gates. Throughput is compared only within this run (host speed
    // drifts, so absolute scenarios/second is never gated). In affinity
    // mode, lanes-per-batch proves the batcher actually filled lockstep
    // lanes rather than winning some other way; in large-model mode the
    // same counter proves every lane *ejected* (partitioned models must
    // never enter a lockstep batch).
    if let Some(parses) = metrics_ok {
        assert!(parses, "/metrics exposition is missing serve families");
    }
    if opts.large_model {
        assert_eq!(
            affinity.tally.batched, 0,
            "partitioned-backend lanes must eject from lockstep batching"
        );
        if cores >= 2 {
            assert!(
                ratio > 1.0,
                "partition workers should beat the serial sweep within-run on a \
                 {cores}-core host (got {ratio:.2}x)"
            );
        } else {
            println!(
                "large-model ratio gate skipped: single-core host \
                 (partitioned/serial {ratio:.2}x)"
            );
        }
        println!("serve-bench gates passed");
        return ExitCode::SUCCESS;
    }
    assert!(
        lanes_per_batch > 1.0,
        "affinity phase never formed a multi-lane batch (lanes/batch = {lanes_per_batch:.2})"
    );
    if opts.quick {
        assert!(
            ratio > 1.0,
            "affinity batching should beat the naive baseline within-run (got {ratio:.2}x)"
        );
    } else {
        assert!(
            ratio >= 2.0,
            "affinity batching should sustain >= 2x the naive baseline within-run (got {ratio:.2}x)"
        );
    }
    if let Some((_, _, overhead_ratio)) = recorder_phases {
        // Within-run ratio only — absolute scenarios/second drifts with
        // host load. Full runs hold the 3% acceptance bar (2.5 s slices
        // average scheduler noise down far enough to resolve it); quick
        // runs gate at smoke level, because 400 ms slices on a loaded
        // single-core host cannot distinguish 3% from scheduling jitter.
        // EVOLVE_RECORDER_TOLERANCE overrides either floor.
        let floor = std::env::var("EVOLVE_RECORDER_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(if opts.quick { 0.90 } else { 0.97 });
        assert!(
            overhead_ratio >= floor,
            "flight recorder costs more than {:.1}% throughput within-run \
             (attached/detached = {overhead_ratio:.3}x)",
            (1.0 - floor) * 100.0
        );
    }
    println!("serve-bench gates passed");
    ExitCode::SUCCESS
}
