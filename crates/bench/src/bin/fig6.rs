//! Reproduces **Fig. 6**: "Observation of studied architecture evolution
//! over the simulation time (a) and over the observation time (b), (c)".
//!
//! One LTE frame of 14 symbols spaced 71.42 µs runs through the dynamic
//! computation path. Part (a) lists the simulation-time events — the input
//! offers `u(0..13)` and the computed outputs `y(k)` — and parts (b), (c)
//! print the computational complexity per time unit (GOPS) of the DSP and
//! of the dedicated hardware, derived purely from computed intermediate
//! instants (the observation-time axis). The same series from the
//! conventional model is diffed to confirm exactness.
//!
//! The receiver is evaluated through the sweep primitives: frame-count
//! scenarios fan out over [`parallel_map_with`] workers, each holding one
//! derived engine that [`drive_engine`] re-drives after [`Engine::reset`]
//! — the case-study proof that custom architectures ride the same
//! machinery as the built-in sweep models.
//!
//! Usage: `fig6 [frames] [threads]` (defaults: 1 frame, host parallelism).

use evolve_core::{derive_tdg, Engine};
use evolve_explore::{drive_engine, parallel_map_with, ScenarioOutcome};
use evolve_lte::{frame_stimulus, receiver, Scenario, SYMBOLS_PER_FRAME};
use evolve_model::{elaborate, Environment, UsageSeries};

fn main() {
    let mut args = std::env::args().skip(1);
    let frames: u64 = args
        .next()
        .map(|s| s.parse().expect("frames must be a number"))
        .unwrap_or(1);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    let rx = receiver(Scenario::default()).expect("receiver builds");
    let relation_count = rx.arch.app().relations().len();

    // Scenario per frame count 1..=frames, deterministically seeded; each
    // worker derives the receiver graph once and resets it between runs.
    let scenarios: Vec<u64> = (1..=frames).collect();
    let arch = rx.arch.clone();
    let scenario_rx = rx.scenario;
    let outcomes: Vec<(u64, ScenarioOutcome)> = parallel_map_with(
        scenarios,
        threads,
        || None::<Engine>,
        move |engine, _, frame_count| {
            let engine = engine.get_or_insert_with(|| {
                Engine::new(derive_tdg(&arch).expect("receiver derives"), relation_count, true)
            });
            engine.reset();
            let stimulus = frame_stimulus(scenario_rx, frame_count, 42);
            (frame_count, drive_engine(engine, stimulus.arrivals()))
        },
    );
    let (_, equivalent) = outcomes.last().expect("at least one frame");

    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, frames, 42));
    let conventional = elaborate(&rx.arch, &env).expect("conventional builds").run();

    println!("Fig. 6 reproduction — LTE receiver, {frames} frame(s) of {SYMBOLS_PER_FRAME} symbols");
    println!();

    // (a) evolution over the simulation time: u(k) offers and y(k) outputs.
    println!("(a) simulation-time events (µs)");
    print!("    u(k):");
    for &t in equivalent.input_acks.iter().take(SYMBOLS_PER_FRAME as usize) {
        print!(" {:8.2}", t as f64 / 1_000.0);
    }
    println!();
    print!("    y(k):");
    for &(_, y, _) in equivalent.outputs.iter().take(SYMBOLS_PER_FRAME as usize) {
        print!(" {:8.2}", y as f64 / 1_000.0);
    }
    println!();
    println!();

    // (b)/(c) usage over the observation time, from computed instants only.
    let bin = 20_000; // 20 µs bins
    for (tag, resource, description) in [
        ("(b)", rx.dsp, "digital signal processor"),
        ("(c)", rx.decoder_hw, "dedicated hardware resource"),
    ] {
        let computed = UsageSeries::from_records(&equivalent.exec_records, resource, bin);
        let simulated = UsageSeries::from_records(&conventional.exec_records, resource, bin);
        let exact = computed == simulated;
        println!(
            "{tag} {description} — GOPS per {} µs bin (peak {:.2}, {} bins){}",
            bin / 1_000,
            computed.peak(),
            computed.bins.len(),
            if exact {
                " [identical to the simulated model]"
            } else {
                " [MISMATCH vs simulated model]"
            }
        );
        print!("    t(µs):");
        for (t, _) in computed.points().take(24) {
            print!(" {:6.0}", t.ticks() as f64 / 1_000.0);
        }
        println!();
        print!("    GOPS :");
        for (_, v) in computed.points().take(24) {
            print!(" {v:6.2}");
        }
        println!();
        // Coarse sparkline over the full horizon.
        let peak = computed.peak().max(1e-9);
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let line: String = computed
            .bins
            .iter()
            .map(|v| glyphs[((v / peak) * (glyphs.len() - 1) as f64).round() as usize])
            .collect();
        println!("    |{line}|");
        println!();
    }

    println!(
        "events: conventional={} equivalent(boundary)={}  ratio {:.2}",
        conventional.relation_events(),
        equivalent.boundary_events,
        conventional.relation_events() as f64 / equivalent.boundary_events.max(1) as f64,
    );
    println!(
        "engine: {} nodes computed, {} arc evaluations, {} iterations over {} swept scenario(s)",
        equivalent.engine_stats.nodes_computed,
        equivalent.engine_stats.arcs_evaluated,
        equivalent.engine_stats.iterations_completed,
        outcomes.len(),
    );
}
