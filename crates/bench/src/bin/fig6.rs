//! Reproduces **Fig. 6**: "Observation of studied architecture evolution
//! over the simulation time (a) and over the observation time (b), (c)".
//!
//! One LTE frame of 14 symbols spaced 71.42 µs runs through the equivalent
//! receiver model. Part (a) lists the simulation-time events — the input
//! offers `u(0..13)` and the computed outputs `y(k)` — and parts (b), (c)
//! print the computational complexity per time unit (GOPS) of the DSP and
//! of the dedicated hardware, derived purely from computed intermediate
//! instants (the observation-time axis). The same series from the
//! conventional model is diffed to confirm exactness.
//!
//! Usage: `fig6 [frames]` (default 1).

use evolve_core::equivalent_simulation;
use evolve_lte::{frame_stimulus, receiver, Scenario, SYMBOLS_PER_FRAME};
use evolve_model::{elaborate, Environment, UsageSeries};

fn main() {
    let frames: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("frames must be a number"))
        .unwrap_or(1);

    let rx = receiver(Scenario::default()).expect("receiver builds");
    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, frames, 42));

    let equivalent = equivalent_simulation(&rx.arch, &env)
        .expect("equivalent model builds")
        .run();
    let conventional = elaborate(&rx.arch, &env).expect("conventional builds").run();

    println!("Fig. 6 reproduction — LTE receiver, {frames} frame(s) of {SYMBOLS_PER_FRAME} symbols");
    println!();

    // (a) evolution over the simulation time: u(k) offers and y(k) outputs.
    println!("(a) simulation-time events (µs)");
    let u = &equivalent.run.relation_logs[rx.input.index()].write_instants;
    let y = &equivalent.run.relation_logs[rx.output.index()].write_instants;
    print!("    u(k):");
    for t in u.iter().take(SYMBOLS_PER_FRAME as usize) {
        print!(" {:8.2}", t.ticks() as f64 / 1_000.0);
    }
    println!();
    print!("    y(k):");
    for t in y.iter().take(SYMBOLS_PER_FRAME as usize) {
        print!(" {:8.2}", t.ticks() as f64 / 1_000.0);
    }
    println!();
    println!();

    // (b)/(c) usage over the observation time, from computed instants only.
    let bin = 20_000; // 20 µs bins
    for (tag, resource, description) in [
        ("(b)", rx.dsp, "digital signal processor"),
        ("(c)", rx.decoder_hw, "dedicated hardware resource"),
    ] {
        let computed = UsageSeries::from_records(&equivalent.run.exec_records, resource, bin);
        let simulated = UsageSeries::from_records(&conventional.exec_records, resource, bin);
        let exact = computed == simulated;
        println!(
            "{tag} {description} — GOPS per {} µs bin (peak {:.2}, {} bins){}",
            bin / 1_000,
            computed.peak(),
            computed.bins.len(),
            if exact {
                " [identical to the simulated model]"
            } else {
                " [MISMATCH vs simulated model]"
            }
        );
        print!("    t(µs):");
        for (t, _) in computed.points().take(24) {
            print!(" {:6.0}", t.ticks() as f64 / 1_000.0);
        }
        println!();
        print!("    GOPS :");
        for (_, v) in computed.points().take(24) {
            print!(" {v:6.2}");
        }
        println!();
        // Coarse sparkline over the full horizon.
        let peak = computed.peak().max(1e-9);
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let line: String = computed
            .bins
            .iter()
            .map(|v| glyphs[((v / peak) * (glyphs.len() - 1) as f64).round() as usize])
            .collect();
        println!("    |{line}|");
        println!();
    }

    println!(
        "events: conventional={} equivalent(boundary)={}  ratio {:.2}",
        conventional.relation_events(),
        equivalent.boundary_relation_events,
        conventional.relation_events() as f64 / equivalent.boundary_relation_events.max(1) as f64,
    );
}
