//! Integration tests of the LTE case study: real-time feasibility,
//! resource-usage observation (Fig. 6 shape), and equivalence of the two
//! model variants on the receiver architecture.

use evolve_core::validate::{assert_equivalent, compare_models};
use evolve_core::{derive_tdg, simplify};
use evolve_lte::{
    frame_stimulus, receiver, symbol_stimulus, Bandwidth, Modulation, Scenario, SYMBOLS_PER_FRAME,
    SYMBOL_PERIOD,
};
use evolve_model::{elaborate, Environment, ResourceTrace, UsageSeries};

#[test]
fn receiver_keeps_up_with_the_symbol_rate() {
    // Under maximum allocation the pipeline latency per symbol must stay
    // below a frame so the system reaches a steady state.
    let rx = receiver(Scenario::default()).unwrap();
    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, 5, 1));
    let report = elaborate(&rx.arch, &env).unwrap().run();
    let outs = report.instants(rx.output);
    assert_eq!(outs.len(), 5 * SYMBOLS_PER_FRAME as usize);
    // Steady state: inter-output spacing equals the symbol period.
    let spacing = outs[outs.len() - 1].ticks() - outs[outs.len() - 2].ticks();
    assert_eq!(spacing, SYMBOL_PERIOD.ticks(), "throughput-bound pipeline");
}

#[test]
fn dsp_usage_peaks_in_the_single_digit_gops() {
    // Fig. 6(b): the DSP's computational complexity per time unit peaks
    // around 8 GOPS at full allocation.
    let rx = receiver(Scenario::default()).unwrap();
    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, 3, 7));
    let report = elaborate(&rx.arch, &env).unwrap().run();
    let usage = UsageSeries::from_records(&report.exec_records, rx.dsp, 10_000);
    let peak = usage.peak();
    assert!(peak <= 8.0 + 1e-9, "DSP peak {peak} exceeds its speed");
    assert!(peak > 4.0, "DSP peak {peak} implausibly low");
}

#[test]
fn decoder_usage_peaks_near_its_speed() {
    // Fig. 6(c): the dedicated hardware peaks near 150 GOPS in bursts.
    let rx = receiver(Scenario::default()).unwrap();
    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, 3, 7));
    let report = elaborate(&rx.arch, &env).unwrap().run();
    let usage = UsageSeries::from_records(&report.exec_records, rx.decoder_hw, 1_000);
    let peak = usage.peak();
    assert!(peak <= 150.0 + 1e-9);
    assert!(peak > 75.0, "decoder peak {peak} should be bursty but high");
    // The decoder is idle most of the time (its bursts are short).
    let trace = ResourceTrace::from_records(&report.exec_records, rx.decoder_hw);
    let util = trace.utilization(report.end_time);
    assert!(util < 0.5, "decoder utilization {util} should be low");
}

#[test]
fn dsp_utilization_is_high_but_feasible() {
    let rx = receiver(Scenario::default()).unwrap();
    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, 10, 5));
    let report = elaborate(&rx.arch, &env).unwrap().run();
    let trace = ResourceTrace::from_records(&report.exec_records, rx.dsp);
    let util = trace.utilization(report.end_time);
    assert!(util < 1.0);
    assert!(util > 0.3, "DSP utilization {util} unrealistically low");
}

#[test]
fn equivalence_on_the_lte_receiver() {
    // The paper's case study: the equivalent model must reproduce every
    // instant of the conventional receiver model.
    let rx = receiver(Scenario::default()).unwrap();
    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, 8, 11));
    assert_equivalent(&rx.arch, &env);
}

#[test]
fn equivalence_across_scenarios() {
    for (bw, m) in [
        (Bandwidth::Mhz1_4, Modulation::Qpsk),
        (Bandwidth::Mhz5, Modulation::Qam16),
        (Bandwidth::Mhz10, Modulation::Qam64),
    ] {
        let scenario = Scenario {
            bandwidth: bw,
            modulation: m,
            code_rate: (1, 3),
            turbo_iterations: 5,
        };
        let rx = receiver(scenario).unwrap();
        let env = Environment::new().stimulus(rx.input, frame_stimulus(scenario, 4, 23));
        assert_equivalent(&rx.arch, &env);
    }
}

#[test]
fn event_ratio_matches_relation_structure() {
    // 9 relations conventionally vs 2 boundary: ratio 4.5 (the paper
    // measures 4.2 with its tool-specific extra events; same regime).
    let rx = receiver(Scenario::default()).unwrap();
    let env = Environment::new().stimulus(
        rx.input,
        symbol_stimulus(rx.scenario, 20 * SYMBOLS_PER_FRAME, 3),
    );
    let cmp = compare_models(&rx.arch, &env, 4).unwrap();
    assert!(cmp.is_accurate(), "{:?}", cmp.mismatches);
    assert!(
        (cmp.event_ratio() - 4.5).abs() < 1e-9,
        "event ratio {}",
        cmp.event_ratio()
    );
}

#[test]
fn derived_graph_is_near_the_papers_node_count() {
    // The paper reports an 11-node graph for this architecture. Our
    // mechanical derivation is larger; boundary-only simplification should
    // land in the same order of magnitude.
    let rx = receiver(Scenario::default()).unwrap();
    let derived = derive_tdg(&rx.arch).unwrap();
    assert_eq!(derived.tdg().node_count(), 1 + 9 + 16); // input + relations + exec pairs
    let reduced = simplify::simplify(
        derived.tdg(),
        &simplify::Options {
            preserve_observations: false,
        },
    );
    // 18 = input + 9 exchanges + 7 DSP exec-start nodes + the cross-
    // iteration exec-end (multi-predecessor nodes and nodes feeding delayed
    // arcs cannot be folded); the paper's hand-drawn 11-node graph merges
    // resource constraints into its exchange equations.
    assert!(
        reduced.node_count() <= 18,
        "reduced node count {} too large",
        reduced.node_count()
    );
}

#[test]
fn outputs_preserve_frame_structure() {
    let rx = receiver(Scenario::default()).unwrap();
    let frames = 4;
    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, frames, 17));
    let report = elaborate(&rx.arch, &env).unwrap().run();
    let outs = report.instants(rx.output);
    // One decoded block per symbol, strictly ordered.
    assert_eq!(outs.len(), (frames * SYMBOLS_PER_FRAME) as usize);
    assert!(outs.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn hybrid_abstract_dsp_chain_only() {
    // Partial abstraction: the seven DSP functions are computed; the turbo
    // decoder stays an event-driven process on its dedicated hardware.
    use evolve_core::partial::hybrid_simulation;
    let rx = receiver(Scenario::default()).unwrap();
    let group: Vec<evolve_model::FunctionId> =
        (0..7).map(evolve_model::FunctionId::from_index).collect();
    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, 5, 31));
    let conventional = elaborate(&rx.arch, &env).unwrap().run();
    let hybrid = hybrid_simulation(&rx.arch, &group, &env).unwrap().run();
    for ridx in 0..rx.arch.app().relations().len() {
        assert_eq!(
            conventional.relation_logs[ridx].write_instants,
            hybrid.run.relation_logs[ridx].write_instants,
            "relation {ridx}"
        );
    }
    assert!(hybrid.run.stats.activations < conventional.stats.activations);
}

#[test]
fn hybrid_abstract_decoder_only() {
    // Inverse split: only the decoder is computed.
    use evolve_core::partial::hybrid_simulation;
    let rx = receiver(Scenario::default()).unwrap();
    let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, 4, 13));
    let conventional = elaborate(&rx.arch, &env).unwrap().run();
    let hybrid = hybrid_simulation(
        &rx.arch,
        &[evolve_model::FunctionId::from_index(7)],
        &env,
    )
    .unwrap()
    .run();
    for ridx in 0..rx.arch.app().relations().len() {
        assert_eq!(
            conventional.relation_logs[ridx].write_instants,
            hybrid.run.relation_logs[ridx].write_instants,
            "relation {ridx}"
        );
    }
}

#[test]
fn carrier_aggregation_equivalence() {
    // Two component carriers sharing a DSP: the equivalent model has two
    // coupled external inputs. Staggered stimuli exercise partial
    // iterations in the engine (one carrier ahead of the other).
    use evolve_lte::aggregated_receiver;
    let small = Scenario {
        bandwidth: Bandwidth::Mhz10,
        ..Scenario::default()
    };
    let rx = aggregated_receiver([Scenario::default(), small]).unwrap();
    let env = Environment::new()
        .stimulus(rx.inputs[0], frame_stimulus(rx.scenarios[0], 4, 51))
        .stimulus(rx.inputs[1], {
            // Offset the second carrier by half a symbol.
            let base = frame_stimulus(rx.scenarios[1], 4, 52);
            let arrivals = base
                .arrivals()
                .iter()
                .map(|a| evolve_model::Arrival {
                    at: a.at + evolve_des::Duration::from_ticks(35_710),
                    size: a.size,
                })
                .collect();
            evolve_model::Stimulus::new(arrivals)
        });
    assert_equivalent(&rx.arch, &env);
}

#[test]
fn carrier_aggregation_shares_the_dsp() {
    use evolve_lte::aggregated_receiver;
    let rx = aggregated_receiver([Scenario::default(), Scenario::default()]).unwrap();
    let env = Environment::new()
        .stimulus(rx.inputs[0], frame_stimulus(rx.scenarios[0], 3, 1))
        .stimulus(rx.inputs[1], frame_stimulus(rx.scenarios[1], 3, 2));
    let report = elaborate(&rx.arch, &env).unwrap().run();
    // Both carriers fully decoded.
    assert_eq!(report.instants(rx.outputs[0]).len(), 42);
    assert_eq!(report.instants(rx.outputs[1]).len(), 42);
    // The shared (double-speed) DSP carries both carriers' load.
    let trace = ResourceTrace::from_records(&report.exec_records, rx.dsp);
    let util = trace.utilization(report.end_time);
    assert!(util > 0.2 && util < 1.0, "utilization {util}");
}
