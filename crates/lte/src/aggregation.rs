//! Carrier aggregation: two component carriers on one shared DSP.
//!
//! A realistic multi-input stress of the method: each component carrier is
//! a full receiver chain, both DSP-side chains share the *same* sequential
//! processor (interleaved static schedule), while each carrier has its own
//! dedicated decoding hardware. The equivalent model then has two external
//! inputs whose acknowledgment instants couple through the shared DSP
//! schedule — the general multi-input case of the incremental
//! `ComputeInstant()` evaluation.

use evolve_model::{
    Application, Architecture, Behavior, Concurrency, Mapping, ModelError, Platform, RelationId,
    RelationKind, ResourceId,
};

use crate::complexity::StageLoads;
use crate::config::Scenario;
use crate::receiver::{DECODER_SPEED, DSP_SPEED};

/// A two-carrier receiver on a shared DSP.
#[derive(Clone, Debug)]
pub struct AggregatedReceiver {
    /// The validated architecture (16 functions, 3 resources).
    pub arch: Architecture,
    /// Symbol inputs, one per component carrier.
    pub inputs: [RelationId; 2],
    /// Decoded-block outputs, one per component carrier.
    pub outputs: [RelationId; 2],
    /// The shared digital signal processor.
    pub dsp: ResourceId,
    /// Per-carrier dedicated decoder hardware.
    pub decoders: [ResourceId; 2],
    /// The per-carrier scenarios.
    pub scenarios: [Scenario; 2],
}

/// Builds the aggregated receiver. The DSP serves carrier 0's seven stages
/// then carrier 1's, cyclically (the allocation order defines the static
/// schedule).
///
/// # Errors
///
/// Propagates [`ModelError`] from validation.
pub fn aggregated_receiver(scenarios: [Scenario; 2]) -> Result<AggregatedReceiver, ModelError> {
    let mut app = Application::new();
    let mut platform = Platform::new();
    // Double speed: the shared DSP carries two carriers' load.
    let dsp = platform.add_resource("dsp", Concurrency::Sequential, 2 * DSP_SPEED);
    let decoders = [
        platform.add_resource("decoder_hw0", Concurrency::Unlimited, DECODER_SPEED),
        platform.add_resource("decoder_hw1", Concurrency::Unlimited, DECODER_SPEED),
    ];
    let mut mapping = Mapping::new();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();

    for (cc, scenario) in scenarios.iter().enumerate() {
        let loads = StageLoads::new(scenario);
        let stage_loads = [
            ("cp_removal", &loads.cp_removal),
            ("fft", &loads.fft),
            ("channel_est", &loads.channel_estimation),
            ("equalizer", &loads.equalizer),
            ("demapper", &loads.demapper),
            ("descrambler", &loads.descrambler),
            ("rate_dematch", &loads.rate_dematcher),
            ("turbo_decoder", &loads.turbo_decoder),
        ];
        let input = app.add_input(format!("symbols{cc}"), RelationKind::Rendezvous);
        let mut upstream = input;
        for (i, (name, load)) in stage_loads.iter().enumerate() {
            let next = if i + 1 == stage_loads.len() {
                app.add_output(format!("blocks{cc}"), RelationKind::Rendezvous)
            } else {
                app.add_relation(format!("cc{cc}.s{}", i + 1), RelationKind::Rendezvous)
            };
            let f = app.add_function(
                format!("cc{cc}.{name}"),
                Behavior::new()
                    .read(upstream)
                    .execute((*load).clone())
                    .write(next),
            );
            mapping.assign(
                f,
                if *name == "turbo_decoder" {
                    decoders[cc]
                } else {
                    dsp
                },
            );
            if i + 1 == stage_loads.len() {
                outputs.push(next);
            }
            upstream = next;
        }
        inputs.push(input);
    }

    Ok(AggregatedReceiver {
        arch: Architecture::new(app, platform, mapping)?,
        inputs: [inputs[0], inputs[1]],
        outputs: [outputs[0], outputs[1]],
        dsp,
        decoders,
        scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Bandwidth;

    #[test]
    fn shape() {
        let rx = aggregated_receiver([Scenario::default(), Scenario::default()]).unwrap();
        assert_eq!(rx.arch.app().functions().len(), 16);
        assert_eq!(rx.arch.platform().len(), 3);
        assert_eq!(rx.arch.app().external_inputs().len(), 2);
        assert_eq!(rx.arch.app().external_outputs().len(), 2);
        // The shared DSP schedule interleaves 7 + 7 execute statements.
        assert_eq!(rx.arch.schedule(rx.dsp).len(), 14);
    }

    #[test]
    fn asymmetric_carriers() {
        let small = Scenario {
            bandwidth: Bandwidth::Mhz5,
            ..Scenario::default()
        };
        let rx = aggregated_receiver([Scenario::default(), small]).unwrap();
        assert_eq!(rx.scenarios[1].bandwidth, Bandwidth::Mhz5);
    }
}
