//! The eight-function LTE receiver architecture of the paper's case study.
//!
//! "The studied architecture is formed by an application made of eight
//! functions and a platform based on two processing resources. … The
//! channel decoding function is considered to be implemented as a dedicated
//! hardware resource whereas other application functions are allocated to a
//! digital signal processor." (paper Section V)
//!
//! Receiver chain: CP removal → FFT → channel estimation → equalization →
//! soft demapping → descrambling → rate dematching (all on the DSP) →
//! turbo decoding (dedicated hardware).

use evolve_des::Time;
use evolve_model::{
    Application, Architecture, Behavior, Concurrency, Mapping, ModelError, Platform, RelationId,
    RelationKind, ResourceId, Stimulus,
};

use crate::complexity::StageLoads;
use crate::config::{Scenario, SYMBOLS_PER_FRAME, SYMBOL_PERIOD};

/// DSP execution speed in ops per tick (= GOPS with 1 ns ticks).
pub const DSP_SPEED: u64 = 8;

/// Dedicated channel-decoder speed in ops per tick (= GOPS).
pub const DECODER_SPEED: u64 = 150;

/// The built receiver architecture with its useful handles.
#[derive(Clone, Debug)]
pub struct Receiver {
    /// The validated architecture (8 functions, 2 resources).
    pub arch: Architecture,
    /// External input: received OFDM symbols.
    pub input: RelationId,
    /// External output: decoded transport blocks.
    pub output: RelationId,
    /// The digital signal processor.
    pub dsp: ResourceId,
    /// The dedicated channel-decoding hardware.
    pub decoder_hw: ResourceId,
    /// The scenario the loads were built for.
    pub scenario: Scenario,
}

/// Builds the receiver architecture for a scenario.
///
/// # Errors
///
/// Propagates [`ModelError`] from validation (the builder is well-formed,
/// so this does not fail for valid scenarios).
pub fn receiver(scenario: Scenario) -> Result<Receiver, ModelError> {
    let loads = StageLoads::new(&scenario);
    let mut app = Application::new();
    let input = app.add_input("symbols", RelationKind::Rendezvous);

    let stage_names = [
        "cp_removal",
        "fft",
        "channel_est",
        "equalizer",
        "demapper",
        "descrambler",
        "rate_dematch",
        "turbo_decoder",
    ];
    let stage_loads = [
        &loads.cp_removal,
        &loads.fft,
        &loads.channel_estimation,
        &loads.equalizer,
        &loads.demapper,
        &loads.descrambler,
        &loads.rate_dematcher,
        &loads.turbo_decoder,
    ];

    // Chain relations between stages; the last stage writes the output.
    let mut upstream = input;
    let mut functions = Vec::new();
    let mut output = input;
    for (i, (name, load)) in stage_names.iter().zip(stage_loads).enumerate() {
        let next = if i + 1 == stage_names.len() {
            app.add_output("blocks", RelationKind::Rendezvous)
        } else {
            app.add_relation(format!("s{}", i + 1), RelationKind::Rendezvous)
        };
        let f = app.add_function(
            *name,
            Behavior::new()
                .read(upstream)
                .execute((*load).clone())
                .write(next),
        );
        functions.push(f);
        upstream = next;
        output = next;
    }

    let mut platform = Platform::new();
    let dsp = platform.add_resource("dsp", Concurrency::Sequential, DSP_SPEED);
    let decoder_hw = platform.add_resource("decoder_hw", Concurrency::Unlimited, DECODER_SPEED);

    let mut mapping = Mapping::new();
    for (i, f) in functions.iter().enumerate() {
        let target = if stage_names[i] == "turbo_decoder" {
            decoder_hw
        } else {
            dsp
        };
        mapping.assign(*f, target);
    }

    Ok(Receiver {
        arch: Architecture::new(app, platform, mapping)?,
        input,
        output,
        dsp,
        decoder_hw,
        scenario,
    })
}

/// Deterministic per-frame PRB allocation in `[min_prbs, max]` — the
/// paper's "frames with varying parameters".
pub fn frame_allocations(
    scenario: Scenario,
    frames: u64,
    min_prbs: u64,
    seed: u64,
) -> impl Fn(u64) -> u64 {
    let max = scenario.bandwidth.prbs();
    let min = min_prbs.min(max);
    let _ = frames; // any frame index is accepted; the count only documents intent
    let root = evolve_des::SplitMix64::new(seed);
    move |frame: u64| root.fork(frame).range_inclusive(min, max)
}

/// A periodic symbol stimulus: `frames` frames of 14 symbols spaced
/// 71.42 µs, every symbol of a frame carrying that frame's allocation
/// (token size = coded bits per symbol).
pub fn frame_stimulus(scenario: Scenario, frames: u64, seed: u64) -> Stimulus {
    let alloc = frame_allocations(scenario, frames, scenario.bandwidth.prbs() / 4, seed);
    let arrivals = (0..frames * SYMBOLS_PER_FRAME)
        .map(|k| {
            let frame = k / SYMBOLS_PER_FRAME;
            evolve_model::Arrival {
                at: Time::ZERO + SYMBOL_PERIOD.saturating_mul(k),
                size: scenario.coded_bits(alloc(frame)),
            }
        })
        .collect();
    Stimulus::new(arrivals)
}

/// A stimulus of exactly `symbols` symbols (used for the paper's 20 000
/// data-symbol speed-up measurement).
pub fn symbol_stimulus(scenario: Scenario, symbols: u64, seed: u64) -> Stimulus {
    let alloc = frame_allocations(scenario, symbols / SYMBOLS_PER_FRAME + 1, 1, seed);
    let arrivals = (0..symbols)
        .map(|k| {
            let frame = k / SYMBOLS_PER_FRAME;
            evolve_model::Arrival {
                at: Time::ZERO + SYMBOL_PERIOD.saturating_mul(k),
                size: scenario.coded_bits(alloc(frame)),
            }
        })
        .collect();
    Stimulus::new(arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_shape_matches_paper() {
        let r = receiver(Scenario::default()).unwrap();
        assert_eq!(r.arch.app().functions().len(), 8, "eight functions");
        assert_eq!(r.arch.platform().len(), 2, "two processing resources");
        // Seven functions on the DSP, one on the decoder.
        let dsp_count = (0..8)
            .filter(|&i| {
                r.arch
                    .mapping()
                    .resource_of(evolve_model::FunctionId::from_index(i))
                    == Some(r.dsp)
            })
            .count();
        assert_eq!(dsp_count, 7);
        assert_eq!(r.arch.app().external_inputs(), vec![r.input]);
        assert_eq!(r.arch.app().external_outputs(), vec![r.output]);
    }

    #[test]
    fn stimulus_timing() {
        let s = frame_stimulus(Scenario::default(), 2, 1);
        assert_eq!(s.len(), 28);
        let a = s.arrivals();
        assert_eq!(a[0].at, Time::ZERO);
        assert_eq!(a[1].at, Time::from_ticks(71_420));
        assert_eq!(a[14].at, Time::from_ticks(14 * 71_420));
        // All symbols of one frame share the allocation.
        assert!(a[..14].iter().all(|x| x.size == a[0].size));
    }

    #[test]
    fn allocations_vary_across_frames() {
        let scenario = Scenario::default();
        let alloc = frame_allocations(scenario, 100, 10, 3);
        let distinct: std::collections::HashSet<u64> = (0..100).map(alloc).collect();
        assert!(distinct.len() > 10, "allocations should vary");
        assert!((0..100).all(|f| {
            let a = frame_allocations(scenario, 100, 10, 3)(f);
            (10..=100).contains(&a)
        }));
    }

    #[test]
    fn symbol_stimulus_count() {
        let s = symbol_stimulus(Scenario::default(), 101, 9);
        assert_eq!(s.len(), 101);
    }
}
