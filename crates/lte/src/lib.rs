//! LTE physical-layer receiver case study (paper Section V).
//!
//! The paper evaluates its dynamic computation method on "a receiver
//! architecture implementing part of the LTE physical layer protocol": an
//! application of eight functions on a heterogeneous platform — a digital
//! signal processor plus a dedicated channel-decoding hardware resource —
//! driven by periodic frames of 14 OFDM symbols spaced 71.42 µs with
//! frame-varying parameters.
//!
//! This crate provides that substrate:
//!
//! * [`Scenario`] / [`Bandwidth`] / [`Modulation`] — the LTE parameter
//!   space (PRBs, FFT sizes, bits per resource element, code rate).
//! * [`StageLoads`] — per-stage computational-complexity models (operation
//!   counts that become the GOPS curves of the paper's Fig. 6(b)(c)).
//! * [`receiver`] — the eight-function architecture with its DSP/decoder
//!   mapping.
//! * [`frame_stimulus`] / [`symbol_stimulus`] — the periodic, varying
//!   frame environment.
//!
//! # Example
//!
//! ```
//! use evolve_lte::{frame_stimulus, receiver, Scenario};
//! use evolve_model::{elaborate, Environment};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rx = receiver(Scenario::default())?;
//! let env = Environment::new().stimulus(rx.input, frame_stimulus(rx.scenario, 2, 42));
//! let report = elaborate(&rx.arch, &env)?.run();
//! assert_eq!(report.instants(rx.output).len(), 28); // 2 frames × 14 symbols
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod aggregation;
mod complexity;
mod config;
mod receiver;

pub use aggregation::{aggregated_receiver, AggregatedReceiver};
pub use complexity::{
    cp_removal_ops, fft_ops, StageLoads, CHANNEL_EST_OPS_PER_RE, DEMAPPER_OPS_PER_BIT,
    DESCRAMBLER_OPS_PER_BIT, EQUALIZER_OPS_PER_RE, RATE_DEMATCH_OPS_PER_BIT,
    TURBO_OPS_PER_BIT_PER_ITER,
};
pub use config::{Bandwidth, Modulation, Scenario, SYMBOLS_PER_FRAME, SYMBOL_PERIOD};
pub use receiver::{
    frame_allocations, frame_stimulus, receiver, symbol_stimulus, Receiver, DECODER_SPEED,
    DSP_SPEED,
};
