//! LTE downlink physical-layer parameters.
//!
//! The case study of the paper (Section V) evaluates "a receiver
//! architecture implementing part of the LTE physical layer protocol" fed
//! by "an environment that periodically produces data frames with varying
//! parameters". This module captures the standard parameter space: channel
//! bandwidth (hence FFT size and resource-block count), modulation order,
//! code rate, and the 14-symbol/71.42 µs frame timing the paper plots in
//! Fig. 6.

use evolve_des::Duration;

/// OFDM symbol spacing used in the paper's Fig. 6: 71.42 µs (1 ms subframe
/// / 14 symbols), in nanosecond ticks.
pub const SYMBOL_PERIOD: Duration = Duration::from_ticks(71_420);

/// Symbols per frame in the paper's case study.
pub const SYMBOLS_PER_FRAME: u64 = 14;

/// LTE channel bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bandwidth {
    /// 1.4 MHz: 6 PRBs, 128-point FFT.
    Mhz1_4,
    /// 3 MHz: 15 PRBs, 256-point FFT.
    Mhz3,
    /// 5 MHz: 25 PRBs, 512-point FFT.
    Mhz5,
    /// 10 MHz: 50 PRBs, 1024-point FFT.
    Mhz10,
    /// 15 MHz: 75 PRBs, 1536-point FFT.
    Mhz15,
    /// 20 MHz: 100 PRBs, 2048-point FFT.
    Mhz20,
}

impl Bandwidth {
    /// Number of physical resource blocks.
    pub fn prbs(self) -> u64 {
        match self {
            Bandwidth::Mhz1_4 => 6,
            Bandwidth::Mhz3 => 15,
            Bandwidth::Mhz5 => 25,
            Bandwidth::Mhz10 => 50,
            Bandwidth::Mhz15 => 75,
            Bandwidth::Mhz20 => 100,
        }
    }

    /// FFT length of the OFDM demodulator.
    pub fn fft_size(self) -> u64 {
        match self {
            Bandwidth::Mhz1_4 => 128,
            Bandwidth::Mhz3 => 256,
            Bandwidth::Mhz5 => 512,
            Bandwidth::Mhz10 => 1024,
            Bandwidth::Mhz15 => 1536,
            Bandwidth::Mhz20 => 2048,
        }
    }

    /// Subcarriers available for allocation (12 per PRB).
    pub fn subcarriers(self) -> u64 {
        self.prbs() * 12
    }
}

/// Downlink modulation scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// 2 bits per resource element.
    Qpsk,
    /// 4 bits per resource element.
    Qam16,
    /// 6 bits per resource element.
    Qam64,
}

impl Modulation {
    /// Bits carried per resource element.
    pub fn bits_per_re(self) -> u64 {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }
}

/// A deployment scenario: the parameters fixed for a run. Per-frame
/// variability (the paper's "varying parameters") comes from the PRB
/// allocation, which scales every allocation-dependent stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Channel bandwidth (FFT size, maximum PRBs).
    pub bandwidth: Bandwidth,
    /// Modulation scheme.
    pub modulation: Modulation,
    /// Code rate as (numerator, denominator), e.g. (1, 3).
    pub code_rate: (u64, u64),
    /// Turbo-decoder iterations.
    pub turbo_iterations: u64,
}

impl Default for Scenario {
    /// The paper-style operating point: 20 MHz, 64-QAM, rate 1/2, 6 turbo
    /// iterations.
    fn default() -> Self {
        Scenario {
            bandwidth: Bandwidth::Mhz20,
            modulation: Modulation::Qam64,
            code_rate: (1, 2),
            turbo_iterations: 6,
        }
    }
}

impl Scenario {
    /// Coded bits per OFDM symbol when `prbs` resource blocks are allocated.
    ///
    /// This is the token size flowing through the receiver model: every
    /// allocation-dependent stage's load is affine in it.
    pub fn coded_bits(&self, prbs: u64) -> u64 {
        prbs.min(self.bandwidth.prbs()) * 12 * self.modulation.bits_per_re()
    }

    /// Information bits per symbol at the configured code rate.
    pub fn info_bits(&self, prbs: u64) -> u64 {
        self.coded_bits(prbs) * self.code_rate.0 / self.code_rate.1
    }

    /// Resource elements per symbol for an allocation.
    pub fn resource_elements(&self, prbs: u64) -> u64 {
        prbs.min(self.bandwidth.prbs()) * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_tables() {
        assert_eq!(Bandwidth::Mhz20.prbs(), 100);
        assert_eq!(Bandwidth::Mhz20.fft_size(), 2048);
        assert_eq!(Bandwidth::Mhz1_4.subcarriers(), 72);
    }

    #[test]
    fn scenario_bit_budget() {
        let s = Scenario::default();
        // 100 PRBs × 12 REs × 6 bits = 7200 coded bits per symbol.
        assert_eq!(s.coded_bits(100), 7200);
        assert_eq!(s.info_bits(100), 3600);
        // Over-allocation clamps to the bandwidth.
        assert_eq!(s.coded_bits(500), 7200);
        assert_eq!(s.resource_elements(50), 600);
    }

    #[test]
    fn frame_timing_matches_paper() {
        assert_eq!(SYMBOL_PERIOD.ticks(), 71_420);
        assert_eq!(SYMBOLS_PER_FRAME, 14);
        // One frame ≈ 1 ms.
        assert_eq!(SYMBOL_PERIOD.ticks() * SYMBOLS_PER_FRAME, 999_880);
    }
}
