//! Computational-complexity models of the receiver stages.
//!
//! Operation counts follow standard estimates for LTE downlink baseband
//! processing. Fixed-rate stages (CP removal, FFT) depend only on the
//! deployment bandwidth; allocation-dependent stages scale with the
//! resource elements or bits of the current symbol — which is why their
//! loads are affine in the token size (coded bits per symbol).
//!
//! With the workspace convention of 1 tick = 1 ns and resource speeds in
//! ops/tick, 1 op/tick = 1 GOPS, so these counts directly produce the GOPS
//! curves of the paper's Fig. 6(b)(c).

use evolve_model::LoadModel;

use crate::config::Scenario;

/// Integer log2 for power-of-two-ish FFT sizes (1536 rounds up to 11).
fn log2_ceil(n: u64) -> u64 {
    64 - (n - 1).leading_zeros() as u64
}

/// Cyclic-prefix removal: ~2 ops per time-domain sample.
pub fn cp_removal_ops(scenario: &Scenario) -> u64 {
    2 * scenario.bandwidth.fft_size()
}

/// FFT: ~5·N·log₂N real operations (split-radix estimate).
pub fn fft_ops(scenario: &Scenario) -> u64 {
    let n = scenario.bandwidth.fft_size();
    5 * n * log2_ceil(n)
}

/// Channel estimation: ~40 ops per allocated resource element
/// (interpolation across pilots).
pub const CHANNEL_EST_OPS_PER_RE: u64 = 40;

/// MMSE equalization: ~60 ops per allocated resource element.
pub const EQUALIZER_OPS_PER_RE: u64 = 60;

/// Soft demapping: ~10 ops per coded bit.
pub const DEMAPPER_OPS_PER_BIT: u64 = 10;

/// Descrambling: ~2 ops per coded bit.
pub const DESCRAMBLER_OPS_PER_BIT: u64 = 2;

/// Rate dematching: ~4 ops per coded bit.
pub const RATE_DEMATCH_OPS_PER_BIT: u64 = 4;

/// Turbo decoding: ~35 ops per coded bit per iteration (max-log-MAP).
pub const TURBO_OPS_PER_BIT_PER_ITER: u64 = 35;

/// Load models per stage, as a function of the token size (= coded bits of
/// the current symbol). Allocation-dependent stages convert bits to REs
/// through the scenario's modulation order.
#[derive(Clone, Debug)]
pub struct StageLoads {
    /// CP removal (constant per symbol).
    pub cp_removal: LoadModel,
    /// FFT (constant per symbol).
    pub fft: LoadModel,
    /// Channel estimation (per RE).
    pub channel_estimation: LoadModel,
    /// Equalization (per RE).
    pub equalizer: LoadModel,
    /// Soft demapping (per coded bit).
    pub demapper: LoadModel,
    /// Descrambling (per coded bit).
    pub descrambler: LoadModel,
    /// Rate dematching (per coded bit).
    pub rate_dematcher: LoadModel,
    /// Turbo decoding (per coded bit × iterations).
    pub turbo_decoder: LoadModel,
}

impl StageLoads {
    /// Builds the stage loads of a scenario.
    pub fn new(scenario: &Scenario) -> Self {
        let bits_per_re = scenario.modulation.bits_per_re();
        // Per-coded-bit coefficients; RE-based stages divide by bits/RE.
        let per_re_to_per_bit = |ops_per_re: u64| ops_per_re.div_ceil(bits_per_re);
        StageLoads {
            cp_removal: LoadModel::Constant(cp_removal_ops(scenario)),
            fft: LoadModel::Constant(fft_ops(scenario)),
            channel_estimation: LoadModel::PerUnit {
                base: 200,
                per_unit: per_re_to_per_bit(CHANNEL_EST_OPS_PER_RE),
            },
            equalizer: LoadModel::PerUnit {
                base: 300,
                per_unit: per_re_to_per_bit(EQUALIZER_OPS_PER_RE),
            },
            demapper: LoadModel::PerUnit {
                base: 100,
                per_unit: DEMAPPER_OPS_PER_BIT,
            },
            descrambler: LoadModel::PerUnit {
                base: 50,
                per_unit: DESCRAMBLER_OPS_PER_BIT,
            },
            rate_dematcher: LoadModel::PerUnit {
                base: 100,
                per_unit: RATE_DEMATCH_OPS_PER_BIT,
            },
            turbo_decoder: LoadModel::PerUnit {
                base: 1_000,
                per_unit: TURBO_OPS_PER_BIT_PER_ITER * scenario.turbo_iterations,
            },
        }
    }

    /// Total DSP-side operations for one full-allocation symbol (all stages
    /// except the turbo decoder).
    pub fn dsp_ops_per_symbol(&self, scenario: &Scenario) -> u64 {
        let bits = scenario.coded_bits(scenario.bandwidth.prbs());
        let eval = |m: &LoadModel| match m {
            LoadModel::Constant(n) => *n,
            LoadModel::PerUnit { base, per_unit } => base + per_unit * bits,
            _ => unreachable!("stage loads are constant or affine"),
        };
        eval(&self.cp_removal)
            + eval(&self.fft)
            + eval(&self.channel_estimation)
            + eval(&self.equalizer)
            + eval(&self.demapper)
            + eval(&self.descrambler)
            + eval(&self.rate_dematcher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_values() {
        assert_eq!(log2_ceil(128), 7);
        assert_eq!(log2_ceil(1536), 11);
        assert_eq!(log2_ceil(2048), 11);
    }

    #[test]
    fn fft_cost_grows_with_bandwidth() {
        let small = Scenario {
            bandwidth: crate::config::Bandwidth::Mhz1_4,
            ..Scenario::default()
        };
        let large = Scenario::default();
        assert!(fft_ops(&large) > 10 * fft_ops(&small));
        assert_eq!(fft_ops(&large), 5 * 2048 * 11);
    }

    #[test]
    fn symbol_budget_is_feasible_at_8_gops() {
        // The DSP must process one maximum-allocation symbol within the
        // 71.42 µs symbol period at 8 ops/tick (8 GOPS).
        let scenario = Scenario::default();
        let loads = StageLoads::new(&scenario);
        let ops = loads.dsp_ops_per_symbol(&scenario);
        let budget = 8 * crate::config::SYMBOL_PERIOD.ticks();
        assert!(
            ops < budget,
            "per-symbol DSP work {ops} exceeds the 8 GOPS budget {budget}"
        );
        // And it is a substantial fraction of it (realistic utilization).
        assert!(ops > budget / 4, "per-symbol DSP work {ops} unrealistically small");
    }

    #[test]
    fn turbo_dominates_per_bit_cost() {
        let scenario = Scenario::default();
        let loads = StageLoads::new(&scenario);
        let LoadModel::PerUnit { per_unit, .. } = loads.turbo_decoder else {
            panic!("turbo load is affine");
        };
        assert_eq!(per_unit, 35 * 6);
        assert!(per_unit > DEMAPPER_OPS_PER_BIT + RATE_DEMATCH_OPS_PER_BIT);
    }
}
