//! Integration tests of the discrete-event kernel: channel semantics,
//! scheduling order, statistics, and the listen/accept protocol.

use evolve_des::{
    Activation, Api, ChannelId, Completion, Duration, EventId, Kernel, ListenOutcome, Process,
    ReadOutcome, Suspension, Time, WriteOutcome,
};

/// A process driven by a script of steps — keeps test processes compact.
enum Step {
    Wait(u64),
    Write(ChannelId, u64),
    Read(ChannelId, fn(u64)),
    Listen(ChannelId),
    Accept(ChannelId),
    Notify(EventId),
    NotifyAfter(EventId, u64),
    WaitEvent(EventId),
    Record(ChannelId),
}

struct Scripted {
    steps: Vec<Step>,
    pc: usize,
    /// Offer instant captured by the last `Listen`.
    offer: Option<Time>,
    /// Times at which `Record` steps executed.
    log: std::rc::Rc<std::cell::RefCell<Vec<(usize, Time)>>>,
}

impl Scripted {
    fn new(steps: Vec<Step>, log: std::rc::Rc<std::cell::RefCell<Vec<(usize, Time)>>>) -> Self {
        Scripted {
            steps,
            pc: 0,
            offer: None,
            log,
        }
    }
}

impl Process<u64> for Scripted {
    fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
        // Resolve a completion from a previous blocking step.
        if let Some(c) = api.take_completion() {
            match (&self.steps[self.pc], c) {
                (Step::Write(..), Completion::WriteDone) => {}
                (Step::Read(_, check), Completion::Read(v)) => check(v),
                (Step::Listen(_), Completion::Offer(t)) => self.offer = Some(t),
                (step_kind, c) => panic!(
                    "unexpected completion {:?} at pc {} ({})",
                    c,
                    self.pc,
                    match step_kind {
                        Step::Wait(_) => "wait",
                        Step::Write(..) => "write",
                        Step::Read(..) => "read",
                        Step::Listen(_) => "listen",
                        Step::Accept(_) => "accept",
                        Step::Notify(_) => "notify",
                        Step::NotifyAfter(..) => "notify_after",
                        Step::WaitEvent(_) => "wait_event",
                        Step::Record(_) => "record",
                    }
                ),
            }
            self.pc += 1;
        }
        loop {
            let Some(step) = self.steps.get(self.pc) else {
                return Activation::Done;
            };
            match step {
                Step::Wait(d) => {
                    self.pc += 1;
                    return Activation::WaitFor(Duration::from_ticks(*d));
                }
                Step::Write(ch, v) => match api.write(*ch, *v) {
                    WriteOutcome::Done => self.pc += 1,
                    WriteOutcome::Blocked => return Activation::Blocked,
                },
                Step::Read(ch, check) => match api.read(*ch) {
                    ReadOutcome::Done(v) => {
                        check(v);
                        self.pc += 1;
                    }
                    ReadOutcome::Blocked => return Activation::Blocked,
                },
                Step::Listen(ch) => match api.listen(*ch) {
                    ListenOutcome::Offered(t) => {
                        self.offer = Some(t);
                        self.pc += 1;
                    }
                    ListenOutcome::Blocked => return Activation::Blocked,
                },
                Step::Accept(ch) => {
                    assert!(self.offer.is_some(), "Accept requires a prior Listen offer");
                    let _v = api.accept(*ch);
                    self.pc += 1;
                }
                Step::Notify(e) => {
                    api.notify(*e);
                    self.pc += 1;
                }
                Step::NotifyAfter(e, d) => {
                    api.notify_after(*e, Duration::from_ticks(*d));
                    self.pc += 1;
                }
                Step::WaitEvent(e) => {
                    self.pc += 1;
                    return Activation::WaitEvent(*e);
                }
                Step::Record(ch) => {
                    self.log.borrow_mut().push((ch.index(), api.now()));
                    self.pc += 1;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

fn new_log() -> std::rc::Rc<std::cell::RefCell<Vec<(usize, Time)>>> {
    std::rc::Rc::new(std::cell::RefCell::new(Vec::new()))
}

#[test]
fn rendezvous_exchange_is_at_later_arrival_writer_first() {
    let log = new_log();
    let mut k = Kernel::new();
    let ch = k.add_rendezvous();
    k.spawn(
        "writer",
        Scripted::new(vec![Step::Wait(3), Step::Write(ch, 42), Step::Record(ch)], log.clone()),
    );
    k.spawn(
        "reader",
        Scripted::new(
            vec![Step::Wait(10), Step::Read(ch, |v| assert_eq!(v, 42)), Step::Record(ch)],
            log.clone(),
        ),
    );
    k.run();
    assert_eq!(k.channel_log(ch).write_instants, vec![Time::from_ticks(10)]);
    assert_eq!(k.channel_log(ch).read_instants, vec![Time::from_ticks(10)]);
    // Both sides continued at t = 10.
    let times: Vec<u64> = log.borrow().iter().map(|(_, t)| t.ticks()).collect();
    assert_eq!(times, vec![10, 10]);
}

#[test]
fn rendezvous_exchange_is_at_later_arrival_reader_first() {
    let log = new_log();
    let mut k = Kernel::new();
    let ch = k.add_rendezvous();
    k.spawn(
        "writer",
        Scripted::new(vec![Step::Wait(20), Step::Write(ch, 7)], log.clone()),
    );
    k.spawn(
        "reader",
        Scripted::new(vec![Step::Read(ch, |v| assert_eq!(v, 7))], log.clone()),
    );
    k.run();
    assert_eq!(k.channel_log(ch).write_instants, vec![Time::from_ticks(20)]);
}

#[test]
fn fifo_write_does_not_block_until_full() {
    let log = new_log();
    let mut k = Kernel::new();
    let ch = k.add_fifo(2);
    // Writer pushes 3 items back-to-back; the third must wait for a pop.
    k.spawn(
        "writer",
        Scripted::new(
            vec![
                Step::Write(ch, 1),
                Step::Write(ch, 2),
                Step::Write(ch, 3),
                Step::Record(ch),
            ],
            log.clone(),
        ),
    );
    k.spawn(
        "reader",
        Scripted::new(
            vec![
                Step::Wait(50),
                Step::Read(ch, |v| assert_eq!(v, 1)),
                Step::Read(ch, |v| assert_eq!(v, 2)),
                Step::Read(ch, |v| assert_eq!(v, 3)),
            ],
            log.clone(),
        ),
    );
    k.run();
    let wl = &k.channel_log(ch).write_instants;
    assert_eq!(
        wl,
        &vec![Time::ZERO, Time::ZERO, Time::from_ticks(50)],
        "third write completes when the first pop frees space"
    );
    assert_eq!(log.borrow()[0].1, Time::from_ticks(50));
}

#[test]
fn fifo_reader_blocks_on_empty() {
    let log = new_log();
    let mut k = Kernel::new();
    let ch = k.add_fifo(4);
    k.spawn(
        "reader",
        Scripted::new(
            vec![Step::Read(ch, |v| assert_eq!(v, 9)), Step::Record(ch)],
            log.clone(),
        ),
    );
    k.spawn(
        "writer",
        Scripted::new(vec![Step::Wait(33), Step::Write(ch, 9)], log.clone()),
    );
    k.run();
    assert_eq!(log.borrow()[0].1, Time::from_ticks(33));
    assert_eq!(k.channel_log(ch).read_instants, vec![Time::from_ticks(33)]);
}

#[test]
fn listen_then_accept_defers_the_exchange() {
    // The equivalent-model Reception protocol: the writer offers at t = 5,
    // the listener wakes, waits a computed 12 ticks, then accepts at t = 17.
    let log = new_log();
    let mut k = Kernel::new();
    let ch = k.add_rendezvous();
    k.spawn(
        "writer",
        Scripted::new(
            vec![Step::Wait(5), Step::Write(ch, 1), Step::Record(ch)],
            log.clone(),
        ),
    );
    k.spawn(
        "listener",
        Scripted::new(
            vec![Step::Listen(ch), Step::Wait(12), Step::Accept(ch), Step::Record(ch)],
            log.clone(),
        ),
    );
    k.run();
    // The writer was held until the accept instant.
    assert_eq!(k.channel_log(ch).write_instants, vec![Time::from_ticks(17)]);
    let times: Vec<u64> = log.borrow().iter().map(|(_, t)| t.ticks()).collect();
    assert_eq!(times, vec![17, 17]);
}

#[test]
fn listen_sees_earlier_offer_instant() {
    // Writer offers at t = 2; listener arrives at t = 30 and must observe
    // the original offer instant (u(k)), not its own arrival time.
    let log = new_log();
    let mut k = Kernel::new();
    let ch = k.add_rendezvous();
    k.spawn(
        "writer",
        Scripted::new(vec![Step::Wait(2), Step::Write(ch, 1)], log.clone()),
    );
    struct LateListener {
        ch: ChannelId,
        phase: u8,
    }
    impl Process<u64> for LateListener {
        fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Activation::WaitFor(Duration::from_ticks(30))
                }
                1 => {
                    match api.listen(self.ch) {
                        ListenOutcome::Offered(t) => {
                            assert_eq!(t, Time::from_ticks(2), "offer instant preserved");
                            let _ = api.accept(self.ch);
                            Activation::Done
                        }
                        ListenOutcome::Blocked => panic!("offer should be pending"),
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    k.spawn("late_listener", LateListener { ch, phase: 0 });
    k.run();
    assert_eq!(k.channel_log(ch).write_instants, vec![Time::from_ticks(30)]);
}

#[test]
fn events_wake_all_waiters() {
    let log = new_log();
    let mut k = Kernel::new();
    let ev = k.add_event();
    let marker = k.add_rendezvous(); // unused channel; Record tags entries
    for _ in 0..3 {
        k.spawn(
            "waiter",
            Scripted::new(vec![Step::WaitEvent(ev), Step::Record(marker)], log.clone()),
        );
    }
    k.spawn(
        "notifier",
        Scripted::new(vec![Step::Wait(8), Step::Notify(ev)], log.clone()),
    );
    k.run();
    let times: Vec<u64> = log.borrow().iter().map(|(_, t)| t.ticks()).collect();
    assert_eq!(times, vec![8, 8, 8]);
}

#[test]
fn timed_notification_fires_later() {
    let log = new_log();
    let mut k = Kernel::new();
    let ev = k.add_event();
    let marker = k.add_rendezvous();
    k.spawn(
        "waiter",
        Scripted::new(vec![Step::WaitEvent(ev), Step::Record(marker)], log.clone()),
    );
    k.spawn(
        "notifier",
        Scripted::new(vec![Step::NotifyAfter(ev, 25)], log.clone()),
    );
    k.run();
    assert_eq!(log.borrow()[0].1, Time::from_ticks(25));
}

#[test]
fn fifo_ordering_is_preserved() {
    let mut k = Kernel::new();
    let ch = k.add_fifo(8);
    let log = new_log();
    k.spawn(
        "writer",
        Scripted::new(
            (0..5).map(|i| Step::Write(ch, i)).collect(),
            log.clone(),
        ),
    );
    let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    struct Collector {
        ch: ChannelId,
        seen: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        remaining: usize,
    }
    impl Process<u64> for Collector {
        fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
            if let Some(Completion::Read(v)) = api.take_completion() {
                self.seen.borrow_mut().push(v);
                self.remaining -= 1;
            }
            while self.remaining > 0 {
                match api.read(self.ch) {
                    ReadOutcome::Done(v) => {
                        self.seen.borrow_mut().push(v);
                        self.remaining -= 1;
                    }
                    ReadOutcome::Blocked => return Activation::Blocked,
                }
            }
            Activation::Done
        }
    }
    k.spawn(
        "collector",
        Collector {
            ch,
            seen: seen.clone(),
            remaining: 5,
        },
    );
    k.run();
    assert_eq!(*seen.borrow(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn stats_count_activity() {
    let log = new_log();
    let mut k = Kernel::new();
    let ch = k.add_rendezvous();
    k.spawn(
        "writer",
        Scripted::new(vec![Step::Wait(1), Step::Write(ch, 0)], log.clone()),
    );
    k.spawn(
        "reader",
        Scripted::new(vec![Step::Read(ch, |_| {})], log.clone()),
    );
    k.run();
    let s = k.stats();
    assert_eq!(s.transfers, 1);
    assert_eq!(k.relation_events(), 1);
    assert!(s.activations >= 3, "at least three dispatches: {s:?}");
    assert!(s.scheduled >= 1, "the timed wait was scheduled");
    assert!(s.total_events() >= s.scheduled);
}

#[test]
fn run_until_stops_at_deadline() {
    let log = new_log();
    let mut k = Kernel::new();
    k.spawn(
        "sleeper",
        Scripted::new(vec![Step::Wait(100), Step::Wait(100)], log.clone()),
    );
    let reached = k.run_until(Time::from_ticks(150));
    assert_eq!(reached, Time::from_ticks(100));
    // Finish the rest.
    let end = k.run();
    assert_eq!(end, Time::from_ticks(200));
}

#[test]
fn deadlock_is_reported_not_hung() {
    let log = new_log();
    let mut k = Kernel::new();
    let ch = k.add_rendezvous();
    k.spawn(
        "lonely_reader",
        Scripted::new(vec![Step::Read(ch, |_| {})], log.clone()),
    );
    k.run();
    let suspended = k.suspended_processes();
    assert_eq!(suspended.len(), 1);
    assert_eq!(suspended[0], ("lonely_reader", Suspension::OnChannel));
}

#[test]
fn deterministic_fifo_dispatch_order() {
    // Two runs of the same model produce identical logs.
    fn run_once() -> Vec<(usize, u64)> {
        let log = new_log();
        let mut k = Kernel::new();
        let a = k.add_rendezvous();
        let b = k.add_rendezvous();
        k.spawn(
            "w1",
            Scripted::new(vec![Step::Wait(5), Step::Write(a, 1), Step::Record(a)], log.clone()),
        );
        k.spawn(
            "w2",
            Scripted::new(vec![Step::Wait(5), Step::Write(b, 2), Step::Record(b)], log.clone()),
        );
        k.spawn(
            "r1",
            Scripted::new(vec![Step::Read(a, |_| {}), Step::Record(a)], log.clone()),
        );
        k.spawn(
            "r2",
            Scripted::new(vec![Step::Read(b, |_| {}), Step::Record(b)], log.clone()),
        );
        k.run();
        let v = log.borrow().iter().map(|(c, t)| (*c, t.ticks())).collect();
        v
    }
    assert_eq!(run_once(), run_once());
}

#[test]
#[should_panic(expected = "second writer")]
fn two_writers_on_rendezvous_panic() {
    let log = new_log();
    let mut k = Kernel::new();
    let ch = k.add_rendezvous();
    k.spawn("w1", Scripted::new(vec![Step::Write(ch, 1)], log.clone()));
    k.spawn("w2", Scripted::new(vec![Step::Write(ch, 2)], log.clone()));
    k.run();
}

#[test]
#[should_panic(expected = "capacity must be at least 1")]
fn zero_capacity_fifo_rejected() {
    let mut k = Kernel::<u64>::new();
    let _ = k.add_fifo(0);
}

#[test]
#[should_panic(expected = "accept on channel")]
fn accept_without_offer_panics() {
    struct Bad {
        ch: ChannelId,
    }
    impl Process<u64> for Bad {
        fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
            let _ = api.accept(self.ch);
            Activation::Done
        }
    }
    let mut k = Kernel::new();
    let ch = k.add_rendezvous();
    k.spawn("bad", Bad { ch });
    k.run();
}

#[test]
#[should_panic(expected = "only defined on rendezvous")]
fn listen_on_fifo_panics() {
    struct Bad {
        ch: ChannelId,
    }
    impl Process<u64> for Bad {
        fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
            let _ = api.listen(self.ch);
            Activation::Done
        }
    }
    let mut k = Kernel::new();
    let ch = k.add_fifo(1);
    k.spawn("bad", Bad { ch });
    k.run();
}

#[test]
fn offered_peeks_without_completing() {
    struct Writer {
        ch: ChannelId,
    }
    impl Process<u64> for Writer {
        fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
            if api.take_completion().is_some() {
                return Activation::Done;
            }
            match api.write(self.ch, 77) {
                WriteOutcome::Done => Activation::Done,
                WriteOutcome::Blocked => Activation::Blocked,
            }
        }
    }
    struct Peeker {
        ch: ChannelId,
        phase: u8,
    }
    impl Process<u64> for Peeker {
        fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
            match self.phase {
                0 => {
                    assert_eq!(api.offered(self.ch), None, "no offer yet");
                    self.phase = 1;
                    Activation::WaitFor(Duration::from_ticks(5))
                }
                1 => {
                    // Writer parked at t=0; peek twice, then accept.
                    assert_eq!(api.offered(self.ch), Some((Time::ZERO, 77)));
                    assert_eq!(api.offered(self.ch), Some((Time::ZERO, 77)));
                    assert_eq!(api.accept(self.ch), 77);
                    assert_eq!(api.offered(self.ch), None, "consumed");
                    Activation::Done
                }
                _ => unreachable!(),
            }
        }
    }
    let mut k = Kernel::new();
    let ch = k.add_rendezvous();
    k.spawn("peeker", Peeker { ch, phase: 0 });
    k.spawn("writer", Writer { ch });
    k.run();
    assert_eq!(k.channel_log(ch).write_instants, vec![Time::from_ticks(5)]);
}

#[test]
fn dispatch_cost_slows_the_wall_clock() {
    // The calibration knob burns measurable host time per dispatch.
    fn run(cost: u64) -> std::time::Duration {
        let log = new_log();
        let mut k = Kernel::new();
        k.spawn(
            "sleeper",
            Scripted::new((0..200).map(|_| Step::Wait(1)).collect(), log),
        );
        k.set_dispatch_cost_ns(cost);
        let t0 = std::time::Instant::now();
        k.run();
        t0.elapsed()
    }
    let fast = run(0);
    let slow = run(50_000); // 200 × 50 µs = 10 ms minimum
    assert!(slow > fast + std::time::Duration::from_millis(5), "{fast:?} vs {slow:?}");
}
