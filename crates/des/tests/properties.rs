//! Property tests of the kernel: determinism, conservation, and ordering
//! over randomized process topologies.

use evolve_des::{
    Activation, Api, ChannelId, Completion, Duration, Kernel, Process, ReadOutcome, Time,
    WriteOutcome,
};
use proptest::prelude::*;

/// A stage that reads `count` tokens from `rx`, waits `work` ticks each,
/// and forwards them to `tx` (if any).
struct Stage {
    rx: ChannelId,
    tx: Option<ChannelId>,
    work: u64,
    state: u8, // 0 read, 1 read parked, 2 working, 3 write, 4 write parked
    value: u64,
    remaining: u64,
}

impl Process<u64> for Stage {
    fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
        match (self.state, api.take_completion()) {
            (1, Some(Completion::Read(v))) => {
                self.value = v;
                self.state = 2;
                return Activation::WaitFor(Duration::from_ticks(self.work));
            }
            (4, Some(Completion::WriteDone)) => {
                self.remaining -= 1;
                self.state = 0;
            }
            (2, None) => {
                // Woke from the work delay.
                self.state = 3;
            }
            (_, None) => {}
            (s, c) => panic!("stage: unexpected completion {c:?} in state {s}"),
        }
        loop {
            match self.state {
                0 => {
                    if self.remaining == 0 {
                        return Activation::Done;
                    }
                    match api.read(self.rx) {
                        ReadOutcome::Done(v) => {
                            self.value = v;
                            self.state = 2;
                            return Activation::WaitFor(Duration::from_ticks(self.work));
                        }
                        ReadOutcome::Blocked => {
                            self.state = 1;
                            return Activation::Blocked;
                        }
                    }
                }
                3 => match self.tx {
                    None => {
                        self.remaining -= 1;
                        self.state = 0;
                    }
                    Some(tx) => match api.write(tx, self.value + 1) {
                        WriteOutcome::Done => {
                            self.remaining -= 1;
                            self.state = 0;
                        }
                        WriteOutcome::Blocked => {
                            self.state = 4;
                            return Activation::Blocked;
                        }
                    },
                },
                s => unreachable!("stage state {s}"),
            }
        }
    }
}

/// Feeds `offsets`-spaced tokens into `tx`.
struct Feeder {
    tx: ChannelId,
    offsets: Vec<u64>,
    idx: usize,
}

impl Process<u64> for Feeder {
    fn resume(&mut self, api: &mut Api<'_, u64>) -> Activation {
        if let Some(Completion::WriteDone) = api.take_completion() {
            self.idx += 1;
        }
        loop {
            let Some(&at) = self.offsets.get(self.idx) else {
                return Activation::Done;
            };
            let at = Time::from_ticks(at);
            if api.now() < at {
                return Activation::WaitFor(at.since(api.now()));
            }
            match api.write(self.tx, self.idx as u64) {
                WriteOutcome::Done => self.idx += 1,
                WriteOutcome::Blocked => return Activation::Blocked,
            }
        }
    }
}

#[derive(Debug, Clone)]
struct TopologySpec {
    stage_works: Vec<u64>,
    fifo_caps: Vec<Option<usize>>,
    offsets: Vec<u64>,
}

fn topology() -> impl Strategy<Value = TopologySpec> {
    (1usize..5)
        .prop_flat_map(|stages| {
            (
                proptest::collection::vec(0u64..300, stages),
                proptest::collection::vec(proptest::option::of(1usize..4), stages),
                proptest::collection::vec(0u64..500, 1..20),
            )
        })
        .prop_map(|(stage_works, fifo_caps, mut deltas)| {
            let mut acc = 0;
            for d in &mut deltas {
                acc += *d;
                *d = acc;
            }
            TopologySpec {
                stage_works,
                fifo_caps,
                offsets: deltas,
            }
        })
}

fn run(spec: &TopologySpec) -> (Time, Vec<Vec<u64>>, u64) {
    let mut k = Kernel::new();
    let tokens = spec.offsets.len() as u64;
    let mut channels = Vec::new();
    let first = match spec.fifo_caps[0] {
        Some(cap) => k.add_fifo(cap),
        None => k.add_rendezvous(),
    };
    channels.push(first);
    k.spawn(
        "feeder",
        Feeder {
            tx: first,
            offsets: spec.offsets.clone(),
            idx: 0,
        },
    );
    for (i, &work) in spec.stage_works.iter().enumerate() {
        let tx = if i + 1 < spec.stage_works.len() {
            let ch = match spec.fifo_caps[i + 1] {
                Some(cap) => k.add_fifo(cap),
                None => k.add_rendezvous(),
            };
            channels.push(ch);
            Some(ch)
        } else {
            None
        };
        k.spawn(
            format!("stage{i}"),
            Stage {
                rx: channels[i],
                tx,
                work,
                state: 0,
                value: 0,
                remaining: tokens,
            },
        );
    }
    let end = k.run();
    let logs = channels
        .iter()
        .map(|ch| {
            k.channel_log(*ch)
                .write_instants
                .iter()
                .map(|t| t.ticks())
                .collect()
        })
        .collect();
    (end, logs, k.stats().activations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn kernel_runs_are_deterministic(spec in topology()) {
        let a = run(&spec);
        let b = run(&spec);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn all_tokens_are_conserved_and_ordered(spec in topology()) {
        let (end, logs, _) = run(&spec);
        for log in &logs {
            prop_assert_eq!(log.len(), spec.offsets.len(), "token conservation");
            prop_assert!(log.windows(2).all(|w| w[0] <= w[1]), "monotone instants");
        }
        // The run ends no earlier than the last offer.
        prop_assert!(end.ticks() >= *spec.offsets.last().expect("nonempty"));
    }

    #[test]
    fn first_exchange_respects_causality(spec in topology()) {
        let (_, logs, _) = run(&spec);
        // The first exchange cannot precede the first offer.
        prop_assert!(logs[0][0] >= spec.offsets[0]);
        // Each stage's first exchange is no earlier than the previous
        // stage's first exchange plus its work.
        for (i, w) in logs.windows(2).zip(&spec.stage_works) {
            prop_assert!(i[1][0] >= i[0][0] + w);
        }
    }
}
