//! Deterministic pseudo-random numbers for reproducible scenarios.
//!
//! Sweep workloads (see `evolve-explore`) evaluate many randomized
//! scenarios in parallel; results must be bitwise independent of how
//! scenarios land on worker threads. Every stochastic choice therefore
//! draws from a [`SplitMix64`] stream seeded purely by scenario identity —
//! never by wall clock, thread id, or evaluation order.

/// A SplitMix64 pseudo-random generator: tiny, fast, and with a full
/// 2⁶⁴ period — ample for scenario parameter draws (not cryptography).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds a generator; equal seeds yield equal streams on every
    /// platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// A generator for an identified substream (scenario index, input
    /// index …): statistically independent of the parent and of sibling
    /// streams, and independent of evaluation order.
    #[must_use]
    pub fn fork(&self, stream: u64) -> Self {
        let mut child = SplitMix64 {
            state: self.state ^ mix(stream.wrapping_add(0x6a09_e667_f3bc_c909)),
        };
        // One warm-up step decorrelates near-equal seeds.
        child.next_u64();
        child
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// A uniform draw from `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo + 1;
        if span == 0 {
            // hi - lo + 1 overflowed: the full u64 domain.
            return self.next_u64();
        }
        lo + self.next_u64() % span
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_order_independent() {
        let parent = SplitMix64::new(7);
        let mut c3 = parent.fork(3);
        let _ = parent.fork(1).next_u64();
        let mut c3_again = parent.fork(3);
        assert_eq!(c3.next_u64(), c3_again.next_u64());
    }

    #[test]
    fn forks_differ_between_streams() {
        let parent = SplitMix64::new(7);
        assert_ne!(parent.fork(0).next_u64(), parent.fork(1).next_u64());
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut rng = SplitMix64::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let v = rng.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "range draws cover both endpoints");
    }
}
