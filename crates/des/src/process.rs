//! Processes: the resumable units of behaviour scheduled by the kernel.
//!
//! A [`Process`] is the analogue of a SystemC thread/method process. The
//! kernel activates it by calling [`Process::resume`]; the process performs
//! work through the [`Api`](crate::Api) (reading channels, notifying events,
//! …) and returns an [`Activation`] describing when it should run next.
//! Every `resume` call models one scheduler dispatch — the context switches
//! whose cost the paper's method removes.

use crate::time::Duration;
use crate::Api;

/// Identifier of a process registered with a [`Kernel`](crate::Kernel).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// The raw index (useful for diagnostics).
    pub fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// What a process asks of the scheduler when it suspends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Resume after the given simulated delay (SystemC `wait(t)`).
    WaitFor(Duration),
    /// Resume when the given event is notified (SystemC `wait(e)`).
    WaitEvent(crate::EventId),
    /// The process is parked on a channel operation; the channel will wake
    /// it (with a [`Completion`](crate::Completion)) when the operation
    /// finishes.
    Blocked,
    /// Resume again in the current delta cycle (cooperative yield).
    Yield,
    /// The process has finished and must not be resumed again.
    Done,
}

/// A resumable simulation process.
///
/// Implementations are state machines: each [`resume`](Process::resume) call
/// continues from where the previous one suspended. See the crate-level
/// documentation for a worked producer/consumer example.
pub trait Process<P> {
    /// Runs the process until it suspends, returning how to reschedule it.
    ///
    /// A process that was parked on a channel operation should first call
    /// [`Api::take_completion`](crate::Api::take_completion) to retrieve the
    /// operation's result.
    fn resume(&mut self, api: &mut Api<'_, P>) -> Activation;

    /// Diagnostic name used in traces and error messages.
    fn name(&self) -> &str {
        "anonymous"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId(3).to_string(), "P3");
        assert_eq!(ProcessId(3).index(), 3);
    }

    #[test]
    fn activation_equality() {
        assert_eq!(
            Activation::WaitFor(Duration::from_ticks(5)),
            Activation::WaitFor(Duration::from_ticks(5))
        );
        assert_ne!(Activation::Yield, Activation::Done);
    }
}
