//! The discrete-event simulation kernel.
//!
//! [`Kernel`] owns the simulated clock, the timed event queue, all processes,
//! events and channels, and runs the classic evaluate/advance loop of an
//! event-driven simulator (the SystemC scheduler analogue): all activity at
//! the current instant is drained through delta cycles, then time jumps to
//! the next scheduled entry.
//!
//! Every process dispatch and queue operation has real host cost — that cost,
//! multiplied by the number of simulation events, is precisely what the
//! paper's dynamic computation method removes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::channel::{
    ChannelId, ChannelLog, ChannelState, Completion, ListenOutcome, ReadOutcome,
    RendezvousState, WriteOutcome,
};
use crate::event::{EventId, EventState};
use crate::process::{Activation, Process, ProcessId};
use crate::stats::KernelStats;
use crate::time::{Duration, Time};

#[derive(PartialEq, Eq)]
enum WakeKind {
    Process(ProcessId),
    Notify(EventId),
}

struct HeapEntry {
    time: Time,
    seq: u64,
    kind: WakeKind,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Why a process is currently not runnable (for deadlock diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suspension {
    /// Waiting for a timed wakeup.
    Timed(Time),
    /// Waiting for an event notification.
    OnEvent(EventId),
    /// Parked on a channel operation.
    OnChannel,
    /// Finished.
    Done,
    /// Runnable (in the ready queue).
    Ready,
    /// Currently being dispatched.
    Running,
}

struct ProcSlot<P> {
    /// `None` once the process has finished (stale wakes then panic loudly).
    process: Option<Box<dyn Process<P>>>,
    name: String,
}

pub(crate) struct Inner<P> {
    now: Time,
    seq: u64,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    ready: VecDeque<ProcessId>,
    events: Vec<EventState>,
    channels: Vec<ChannelState<P>>,
    logs: Vec<ChannelLog>,
    completions: Vec<Option<Completion<P>>>,
    suspensions: Vec<Suspension>,
    stats: KernelStats,
}

impl<P> Inner<P> {
    fn schedule(&mut self, time: Time, kind: WakeKind) {
        self.seq += 1;
        self.stats.scheduled += 1;
        self.heap.push(Reverse(HeapEntry {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Makes `pid` runnable in the current delta cycle.
    fn make_ready(&mut self, pid: ProcessId) {
        debug_assert!(
            !matches!(
                self.suspensions[pid.0],
                Suspension::Ready | Suspension::Running | Suspension::Done
            ),
            "{pid} woken while {:?}",
            self.suspensions[pid.0]
        );
        self.suspensions[pid.0] = Suspension::Ready;
        self.stats.delta_wakes += 1;
        self.ready.push_back(pid);
    }

    fn complete(&mut self, pid: ProcessId, completion: Completion<P>) {
        debug_assert!(
            self.completions[pid.0].is_none(),
            "{pid} already has a pending completion"
        );
        self.completions[pid.0] = Some(completion);
        self.make_ready(pid);
    }

    fn log_write(&mut self, ch: ChannelId) {
        self.stats.transfers += 1;
        let now = self.now;
        self.logs[ch.0].write_instants.push(now);
    }

    fn log_read(&mut self, ch: ChannelId) {
        let now = self.now;
        self.logs[ch.0].read_instants.push(now);
    }
}

/// The simulation API handed to a [`Process`] during
/// [`resume`](Process::resume).
///
/// All interaction with the simulated world — the clock, channels, events —
/// goes through this handle.
pub struct Api<'a, P> {
    inner: &'a mut Inner<P>,
    pid: ProcessId,
}

impl<P> std::fmt::Debug for Api<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Api")
            .field("pid", &self.pid)
            .field("now", &self.inner.now)
            .finish()
    }
}

impl<P> Api<'_, P> {
    /// The current simulation instant.
    pub fn now(&self) -> Time {
        self.inner.now
    }

    /// The identifier of the running process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Takes the pending [`Completion`] left by the channel operation this
    /// process was parked on, if any. Call this first when resuming from
    /// [`Activation::Blocked`].
    pub fn take_completion(&mut self) -> Option<Completion<P>> {
        self.inner.completions[self.pid.0].take()
    }

    /// Attempts to write `value` to a channel.
    ///
    /// * Rendezvous: completes now if a reader (or listener that already
    ///   accepted) is ready, otherwise parks the writer.
    /// * FIFO: completes now if the queue has space, otherwise parks.
    ///
    /// On [`WriteOutcome::Blocked`] the process must return
    /// [`Activation::Blocked`]; it will be woken with
    /// [`Completion::WriteDone`].
    ///
    /// # Panics
    ///
    /// Panics if another writer is already parked on a rendezvous channel
    /// (each relation has a single producer in well-formed models).
    pub fn write(&mut self, ch: ChannelId, value: P) -> WriteOutcome {
        let now = self.inner.now;
        let pid = self.pid;
        match &mut self.inner.channels[ch.0] {
            ChannelState::Rendezvous(state) => match std::mem::replace(state, RendezvousState::Idle)
            {
                RendezvousState::Idle => {
                    *state = RendezvousState::WriterWaiting {
                        writer: pid,
                        value,
                        since: now,
                    };
                    WriteOutcome::Blocked
                }
                RendezvousState::ReaderWaiting(reader) => {
                    // Both sides present: the exchange happens now.
                    self.inner.log_write(ch);
                    self.inner.log_read(ch);
                    self.inner.complete(reader, Completion::Read(value));
                    WriteOutcome::Done
                }
                RendezvousState::Listening(listener) => {
                    // Inform the listener; the transfer waits for `accept`.
                    *state = RendezvousState::WriterWaiting {
                        writer: pid,
                        value,
                        since: now,
                    };
                    self.inner.complete(listener, Completion::Offer(now));
                    WriteOutcome::Blocked
                }
                RendezvousState::WriterWaiting { writer, .. } => {
                    panic!(
                        "second writer {pid} on rendezvous channel {ch} (first: {writer})"
                    );
                }
            },
            ChannelState::Fifo(fifo) => {
                if fifo.queue.len() < fifo.capacity {
                    fifo.queue.push_back(value);
                    self.inner.log_write(ch);
                    // Serve a parked reader, if any.
                    if let Some(reader) = {
                        let ChannelState::Fifo(f) = &mut self.inner.channels[ch.0] else {
                            unreachable!()
                        };
                        f.pending_reader.take()
                    } {
                        let ChannelState::Fifo(f) = &mut self.inner.channels[ch.0] else {
                            unreachable!()
                        };
                        let v = f.queue.pop_front().expect("just pushed");
                        self.inner.log_read(ch);
                        self.inner.complete(reader, Completion::Read(v));
                    }
                    WriteOutcome::Done
                } else {
                    fifo.pending_writers.push_back((pid, value));
                    WriteOutcome::Blocked
                }
            }
        }
    }

    /// Attempts to read from a channel.
    ///
    /// On [`ReadOutcome::Blocked`] the process must return
    /// [`Activation::Blocked`]; it will be woken with [`Completion::Read`].
    ///
    /// # Panics
    ///
    /// Panics if another reader or listener is already parked on the channel
    /// (each relation has a single consumer in well-formed models).
    pub fn read(&mut self, ch: ChannelId) -> ReadOutcome<P> {
        let pid = self.pid;
        match &mut self.inner.channels[ch.0] {
            ChannelState::Rendezvous(state) => match std::mem::replace(state, RendezvousState::Idle)
            {
                RendezvousState::Idle => {
                    *state = RendezvousState::ReaderWaiting(pid);
                    ReadOutcome::Blocked
                }
                RendezvousState::WriterWaiting { writer, value, .. } => {
                    self.inner.log_write(ch);
                    self.inner.log_read(ch);
                    self.inner.complete(writer, Completion::WriteDone);
                    ReadOutcome::Done(value)
                }
                RendezvousState::ReaderWaiting(other) | RendezvousState::Listening(other) => {
                    panic!("second reader {pid} on rendezvous channel {ch} (first: {other})");
                }
            },
            ChannelState::Fifo(fifo) => {
                if let Some(value) = fifo.queue.pop_front() {
                    self.inner.log_read(ch);
                    // Space freed: admit a parked writer, if any.
                    let ChannelState::Fifo(f) = &mut self.inner.channels[ch.0] else {
                        unreachable!()
                    };
                    if let Some((writer, wvalue)) = f.pending_writers.pop_front() {
                        f.queue.push_back(wvalue);
                        self.inner.log_write(ch);
                        self.inner.complete(writer, Completion::WriteDone);
                    }
                    ReadOutcome::Done(value)
                } else {
                    assert!(
                        fifo.pending_reader.is_none(),
                        "second reader {pid} on fifo channel {ch}"
                    );
                    fifo.pending_reader = Some(pid);
                    ReadOutcome::Blocked
                }
            }
        }
    }

    /// Registers interest in the next offer on a rendezvous channel without
    /// completing the transfer (the equivalent model's `Reception` protocol,
    /// paper Fig. 4).
    ///
    /// On [`ListenOutcome::Offered`] a writer is parked and its offer instant
    /// is returned; complete the exchange later with [`Api::accept`]. On
    /// [`ListenOutcome::Blocked`] the process parks and will be woken with
    /// [`Completion::Offer`].
    ///
    /// # Panics
    ///
    /// Panics if called on a FIFO channel or if a reader is already parked.
    pub fn listen(&mut self, ch: ChannelId) -> ListenOutcome {
        let pid = self.pid;
        match &mut self.inner.channels[ch.0] {
            ChannelState::Rendezvous(state) => match state {
                RendezvousState::Idle => {
                    *state = RendezvousState::Listening(pid);
                    ListenOutcome::Blocked
                }
                RendezvousState::WriterWaiting { since, .. } => ListenOutcome::Offered(*since),
                RendezvousState::ReaderWaiting(other) | RendezvousState::Listening(other) => {
                    panic!("second listener {pid} on rendezvous channel {ch} (first: {other})");
                }
            },
            ChannelState::Fifo(_) => panic!("listen is only defined on rendezvous channels"),
        }
    }

    /// Inspects a pending rendezvous offer without completing it: the offer
    /// instant and a copy of the value, if a writer is parked.
    ///
    /// Used by equivalent-model receptions that need the offered token's
    /// parameters (e.g. its data size) to *compute* the exchange instant
    /// before accepting.
    pub fn offered(&self, ch: ChannelId) -> Option<(Time, P)>
    where
        P: Clone,
    {
        match &self.inner.channels[ch.0] {
            ChannelState::Rendezvous(RendezvousState::WriterWaiting { value, since, .. }) => {
                Some((*since, value.clone()))
            }
            _ => None,
        }
    }

    /// Completes a previously offered rendezvous transfer *now*, returning
    /// the value and waking the parked writer. The exchange instant logged
    /// for the relation is the current time.
    ///
    /// # Panics
    ///
    /// Panics if no writer is parked on the channel (protocol error: call
    /// only after an [`Api::listen`] offer at or before the computed
    /// exchange instant).
    pub fn accept(&mut self, ch: ChannelId) -> P {
        match &mut self.inner.channels[ch.0] {
            ChannelState::Rendezvous(state) => {
                match std::mem::replace(state, RendezvousState::Idle) {
                    RendezvousState::WriterWaiting { writer, value, .. } => {
                        self.inner.log_write(ch);
                        self.inner.log_read(ch);
                        self.inner.complete(writer, Completion::WriteDone);
                        value
                    }
                    other => {
                        *state = other;
                        panic!("accept on channel {ch} without a parked writer");
                    }
                }
            }
            ChannelState::Fifo(_) => panic!("accept is only defined on rendezvous channels"),
        }
    }

    /// Notifies an event immediately: all current waiters become runnable in
    /// this delta cycle.
    pub fn notify(&mut self, event: EventId) {
        self.inner.stats.notifications += 1;
        let waiters = std::mem::take(&mut self.inner.events[event.0].waiters);
        for pid in waiters {
            self.inner.make_ready(pid);
        }
    }

    /// Notifies an event after a simulated delay (a timed notification).
    pub fn notify_after(&mut self, event: EventId, delay: Duration) {
        let at = self.inner.now + delay;
        self.inner.schedule(at, WakeKind::Notify(event));
    }
}

/// Builder-style owner of a simulation: processes, channels, events, clock.
///
/// `P` is the payload type carried by channels (the model layer uses a data
/// token carrying a size).
///
/// # Examples
///
/// A producer/consumer pair over a rendezvous channel:
///
/// ```
/// use evolve_des::{
///     Activation, Api, Completion, Duration, Kernel, Process, ReadOutcome, WriteOutcome,
/// };
///
/// struct Producer {
///     ch: evolve_des::ChannelId,
///     sent: bool,
/// }
/// impl Process<u32> for Producer {
///     fn resume(&mut self, api: &mut Api<'_, u32>) -> Activation {
///         if api.take_completion().is_some() || self.sent {
///             return Activation::Done; // write completed
///         }
///         self.sent = true;
///         match api.write(self.ch, 7) {
///             WriteOutcome::Done => Activation::Done,
///             WriteOutcome::Blocked => Activation::Blocked,
///         }
///     }
/// }
///
/// struct Consumer {
///     ch: evolve_des::ChannelId,
///     waited: bool,
/// }
/// impl Process<u32> for Consumer {
///     fn resume(&mut self, api: &mut Api<'_, u32>) -> Activation {
///         if let Some(Completion::Read(v)) = api.take_completion() {
///             assert_eq!(v, 7);
///             return Activation::Done;
///         }
///         if !self.waited {
///             self.waited = true;
///             return Activation::WaitFor(Duration::from_ticks(10));
///         }
///         match api.read(self.ch) {
///             ReadOutcome::Done(v) => {
///                 assert_eq!(v, 7);
///                 Activation::Done
///             }
///             ReadOutcome::Blocked => Activation::Blocked,
///         }
///     }
/// }
///
/// let mut kernel = Kernel::new();
/// let ch = kernel.add_rendezvous();
/// kernel.spawn("producer", Producer { ch, sent: false });
/// kernel.spawn("consumer", Consumer { ch, waited: false });
/// kernel.run();
/// // The exchange happened when the later party arrived (t = 10).
/// assert_eq!(kernel.channel_log(ch).write_instants[0].ticks(), 10);
/// ```
pub struct Kernel<P> {
    inner: Inner<P>,
    procs: Vec<ProcSlot<P>>,
    /// Host nanoseconds burned per dispatch (simulator-cost calibration).
    dispatch_cost_ns: u64,
}

impl<P> Default for Kernel<P> {
    fn default() -> Self {
        Kernel::new()
    }
}

impl<P> std::fmt::Debug for Kernel<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.inner.now)
            .field("processes", &self.procs.len())
            .field("channels", &self.inner.channels.len())
            .field("stats", &self.inner.stats)
            .finish()
    }
}

impl<P> Kernel<P> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Kernel {
            inner: Inner {
                now: Time::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                ready: VecDeque::new(),
                events: Vec::new(),
                channels: Vec::new(),
                logs: Vec::new(),
                completions: Vec::new(),
                suspensions: Vec::new(),
                stats: KernelStats::default(),
            },
            procs: Vec::new(),
            dispatch_cost_ns: 0,
        }
    }

    /// Calibrates the host cost of one process dispatch, in nanoseconds.
    ///
    /// Real TLM simulators pay far more per `wait()` than this kernel's
    /// native dispatch (a SystemC context switch plus channel/tracing
    /// overhead is typically in the microsecond range; the paper's CoFluent
    /// models average around a millisecond per data item). Setting a
    /// nonzero cost busy-spins that long on every activation so speed-up
    /// experiments can be reported in a heavyweight-kernel regime as well
    /// as the native one. Zero (the default) disables the spin.
    pub fn set_dispatch_cost_ns(&mut self, ns: u64) {
        self.dispatch_cost_ns = ns;
    }

    /// Registers a process; it becomes runnable at time zero.
    pub fn spawn(&mut self, name: impl Into<String>, process: impl Process<P> + 'static) -> ProcessId {
        let pid = ProcessId(self.procs.len());
        self.procs.push(ProcSlot {
            process: Some(Box::new(process)),
            name: name.into(),
        });
        self.inner.completions.push(None);
        self.inner.suspensions.push(Suspension::Ready);
        self.inner.ready.push_back(pid);
        pid
    }

    /// Creates a rendezvous channel.
    pub fn add_rendezvous(&mut self) -> ChannelId {
        let id = ChannelId(self.inner.channels.len());
        self.inner.channels.push(ChannelState::rendezvous());
        self.inner.logs.push(ChannelLog::default());
        id
    }

    /// Creates a bounded FIFO channel.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn add_fifo(&mut self, capacity: usize) -> ChannelId {
        let id = ChannelId(self.inner.channels.len());
        self.inner.channels.push(ChannelState::fifo(capacity));
        self.inner.logs.push(ChannelLog::default());
        id
    }

    /// Creates a notification event.
    pub fn add_event(&mut self) -> EventId {
        let id = EventId(self.inner.events.len());
        self.inner.events.push(EventState::default());
        id
    }

    /// The current simulation instant.
    pub fn now(&self) -> Time {
        self.inner.now
    }

    /// Kernel activity counters so far.
    pub fn stats(&self) -> KernelStats {
        self.inner.stats
    }

    /// The exchange-instant log of a channel.
    pub fn channel_log(&self, ch: ChannelId) -> &ChannelLog {
        &self.inner.logs[ch.0]
    }

    /// Exchange-instant logs of all channels, indexed by [`ChannelId`].
    pub fn channel_logs(&self) -> &[ChannelLog] {
        &self.inner.logs
    }

    /// Total completed transfers across all channels — the paper's count of
    /// "events that occur when data are exchanged through relations".
    pub fn relation_events(&self) -> u64 {
        self.inner.stats.transfers
    }

    /// Runs until no activity remains (empty ready queue and event heap).
    ///
    /// Returns the final simulation time.
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Runs until no activity remains or the next scheduled instant would
    /// exceed `deadline`. Returns the reached simulation time.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        loop {
            // Delta cycles: drain everything runnable at the current instant.
            while let Some(pid) = self.inner.ready.pop_front() {
                self.dispatch(pid);
            }
            // Advance to the next timed entry.
            let Some(Reverse(head)) = self.inner.heap.peek() else {
                break;
            };
            let t = head.time;
            if t > deadline {
                break;
            }
            debug_assert!(t >= self.inner.now, "event queue went backwards");
            self.inner.now = t;
            while let Some(Reverse(head)) = self.inner.heap.peek() {
                if head.time != t {
                    break;
                }
                let Reverse(entry) = self.inner.heap.pop().expect("peeked");
                match entry.kind {
                    WakeKind::Process(pid) => self.inner.make_ready(pid),
                    WakeKind::Notify(eid) => {
                        self.inner.stats.notifications += 1;
                        let waiters = std::mem::take(&mut self.inner.events[eid.0].waiters);
                        for pid in waiters {
                            self.inner.make_ready(pid);
                        }
                    }
                }
            }
        }
        self.inner.now
    }

    /// Names and suspension states of processes that are neither runnable
    /// nor done — useful for diagnosing deadlocks after [`Kernel::run`].
    pub fn suspended_processes(&self) -> Vec<(&str, Suspension)> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(i, slot)| {
                !matches!(
                    self.inner.suspensions[*i],
                    Suspension::Done | Suspension::Ready | Suspension::Running
                ) && slot.process.is_some()
            })
            .map(|(i, slot)| (slot.name.as_str(), self.inner.suspensions[i]))
            .collect()
    }

    fn dispatch(&mut self, pid: ProcessId) {
        let mut process = self.procs[pid.0]
            .process
            .take()
            .unwrap_or_else(|| panic!("dispatch of finished process {pid}"));
        self.inner.suspensions[pid.0] = Suspension::Running;
        self.inner.stats.activations += 1;
        if self.dispatch_cost_ns > 0 {
            let start = std::time::Instant::now();
            while (start.elapsed().as_nanos() as u64) < self.dispatch_cost_ns {
                std::hint::spin_loop();
            }
        }
        let activation = {
            let mut api = Api {
                inner: &mut self.inner,
                pid,
            };
            process.resume(&mut api)
        };
        match activation {
            Activation::WaitFor(d) => {
                let at = self.inner.now + d;
                self.inner.suspensions[pid.0] = Suspension::Timed(at);
                self.inner.schedule(at, WakeKind::Process(pid));
                self.procs[pid.0].process = Some(process);
            }
            Activation::WaitEvent(eid) => {
                self.inner.suspensions[pid.0] = Suspension::OnEvent(eid);
                self.inner.events[eid.0].waiters.push(pid);
                self.procs[pid.0].process = Some(process);
            }
            Activation::Blocked => {
                // The channel holds this process and will wake it with a
                // completion; nothing can have completed it mid-resume.
                debug_assert_eq!(self.inner.suspensions[pid.0], Suspension::Running);
                self.inner.suspensions[pid.0] = Suspension::OnChannel;
                self.procs[pid.0].process = Some(process);
            }
            Activation::Yield => {
                self.inner.suspensions[pid.0] = Suspension::Ready;
                self.inner.ready.push_back(pid);
                self.procs[pid.0].process = Some(process);
            }
            Activation::Done => {
                self.inner.suspensions[pid.0] = Suspension::Done;
                drop(process);
            }
        }
    }

    /// The registered name of a process.
    pub fn process_name(&self, pid: ProcessId) -> &str {
        &self.procs[pid.0].name
    }
}
