//! Kernel activity statistics.
//!
//! These counters quantify the simulation work the paper's method removes:
//! process activations are the context-switch analogue, scheduled events the
//! kernel-queue traffic, and channel transfers the "events that occur when
//! data are exchanged through relations" used for the event ratio of Table I.

/// Cumulative counters maintained by a [`Kernel`](crate::Kernel) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of process dispatches (`resume` calls) — context switches.
    pub activations: u64,
    /// Number of entries pushed onto the timed event queue.
    pub scheduled: u64,
    /// Number of delta-cycle wakeups (yields and same-instant wakes).
    pub delta_wakes: u64,
    /// Number of completed channel transfers across all channels.
    pub transfers: u64,
    /// Number of immediate event notifications delivered.
    pub notifications: u64,
}

impl KernelStats {
    /// Total simulation events: everything that passed through the
    /// scheduler (timed entries plus delta wakeups).
    pub fn total_events(&self) -> u64 {
        self.scheduled + self.delta_wakes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = KernelStats {
            activations: 10,
            scheduled: 4,
            delta_wakes: 3,
            transfers: 2,
            notifications: 1,
        };
        assert_eq!(s.total_events(), 7);
        assert_eq!(KernelStats::default().total_events(), 0);
    }
}
