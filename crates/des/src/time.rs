//! Simulation time.
//!
//! [`Time`] is an absolute instant on the simulation (or observation) time
//! axis; [`Duration`] is a span between instants. Both count integer **ticks**
//! — by convention 1 tick = 1 ns, so the paper's 71.42 µs LTE symbol period is
//! `Duration::from_ticks(71_420)`. Integer ticks keep instant comparisons
//! exact, which the accuracy validation (conventional vs. equivalent model)
//! relies on.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

/// An absolute simulation instant, in ticks since time zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Time(u64);

impl Time {
    /// Time zero, the simulation start.
    pub const ZERO: Time = Time(0);

    /// The largest representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from a tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// The tick count since time zero.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: Time) -> Duration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} is after {self}"
        );
        Duration(self.0 - earlier.0)
    }

    /// Saturating instant addition.
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// Checked instant addition: `None` when the result would exceed
    /// [`Time::MAX`].
    ///
    /// Extrapolation paths (e.g. fast-forwarding a periodic steady state by
    /// a large iteration count) must use this instead of
    /// [`Time::saturating_add`]: a silently saturated instant compares
    /// *equal* to other saturated instants, corrupting exact-tick
    /// comparisons, whereas `None` lets the caller surface a typed overflow
    /// error.
    #[must_use]
    pub fn checked_add(self, d: Duration) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

/// A span of simulation time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span from a tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// The tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns `true` for the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by an integer factor, saturating.
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Checked scaling: `None` when `self * factor` exceeds `u64` ticks.
    ///
    /// The checked counterpart of [`Duration::saturating_mul`] for
    /// extrapolation paths that must not silently clamp (see
    /// [`Time::checked_add`]).
    #[must_use]
    pub fn checked_mul(self, factor: u64) -> Option<Duration> {
        self.0.checked_mul(factor).map(Duration)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, d: Duration) -> Time {
        Time(
            self.0
                .checked_add(d.0)
                .expect("simulation time overflowed u64 ticks"),
        )
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_add(rhs.0)
                .expect("duration overflowed u64 ticks"),
        )
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflowed"),
        )
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}dt", self.0)
    }
}

impl From<u64> for Duration {
    fn from(ticks: u64) -> Self {
        Duration(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = Time::from_ticks(100);
        let d = Duration::from_ticks(42);
        assert_eq!((t + d).ticks(), 142);
        assert_eq!((t + d).since(t), d);
        let mut u = t;
        u += d;
        assert_eq!(u, t + d);
    }

    #[test]
    fn duration_sum_and_sub() {
        let ds = [1u64, 2, 3].map(Duration::from_ticks);
        assert_eq!(ds.iter().copied().sum::<Duration>(), Duration::from_ticks(6));
        assert_eq!(ds[2] - ds[0], Duration::from_ticks(2));
    }

    #[test]
    fn ordering() {
        assert!(Time::ZERO < Time::from_ticks(1));
        assert!(Duration::ZERO.is_zero());
        assert!(Time::MAX > Time::from_ticks(u64::MAX - 1));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::MAX.saturating_add(Duration::from_ticks(5)), Time::MAX);
        assert_eq!(
            Duration::from_ticks(u64::MAX).saturating_mul(2),
            Duration::from_ticks(u64::MAX)
        );
    }

    #[test]
    fn checked_ops_near_max() {
        // One tick below the edge round-trips exactly…
        assert_eq!(
            Time::from_ticks(u64::MAX - 5).checked_add(Duration::from_ticks(5)),
            Some(Time::MAX)
        );
        // …one past it reports overflow instead of clamping.
        assert_eq!(
            Time::from_ticks(u64::MAX - 5).checked_add(Duration::from_ticks(6)),
            None
        );
        assert_eq!(Time::MAX.checked_add(Duration::from_ticks(1)), None);
        assert_eq!(Time::MAX.checked_add(Duration::ZERO), Some(Time::MAX));

        let half = Duration::from_ticks(u64::MAX / 2);
        assert_eq!(half.checked_mul(2), Some(Duration::from_ticks(u64::MAX - 1)));
        assert_eq!(half.checked_mul(3), None);
        assert_eq!(Duration::from_ticks(u64::MAX).checked_mul(1).map(Duration::ticks), Some(u64::MAX));
        assert_eq!(Duration::from_ticks(u64::MAX).checked_mul(2), None);
        assert_eq!(Duration::from_ticks(u64::MAX).checked_mul(0), Some(Duration::ZERO));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_checks_order() {
        let _ = Time::ZERO.since(Time::from_ticks(1));
    }

    #[test]
    fn display() {
        assert_eq!(Time::from_ticks(7).to_string(), "7t");
        assert_eq!(Duration::from_ticks(9).to_string(), "9dt");
    }
}
