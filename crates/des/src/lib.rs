//! Discrete-event simulation kernel — the SystemC-like substrate of the
//! `evolve` workspace.
//!
//! The paper this workspace reproduces (*Le Nours, Postula, Bergmann, DATE
//! 2014*) evaluates its dynamic computation method against conventional
//! event-driven TLM performance models executed by the SystemC kernel. This
//! crate provides that substrate from scratch:
//!
//! * [`Kernel`] — the event-driven scheduler: timed event queue, delta
//!   cycles, process dispatch, and activity statistics ([`KernelStats`]).
//! * [`Process`] / [`Activation`] — resumable processes, the analogue of
//!   SystemC thread processes suspended by `wait()`.
//! * Channels — rendezvous and bounded-FIFO relations between processes,
//!   with per-channel exchange-instant logs ([`ChannelLog`]) recording the
//!   paper's `xMi(k)` sequences for accuracy comparison.
//! * Events ([`EventId`]) — `sc_event`-style notifications used by resource
//!   arbiters in the model layer.
//!
//! The kernel is deliberately single-threaded and allocation-conscious: its
//! per-event cost (heap operations plus a dynamic dispatch) is the quantity
//! the paper's method multiplies away, and the benchmark harnesses measure
//! exactly that.
//!
//! See [`Kernel`] for a worked producer/consumer example.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod channel;
mod event;
mod kernel;
mod process;
pub mod rng;
mod stats;
mod time;

pub use channel::{
    ChannelId, ChannelLog, Completion, ListenOutcome, ReadOutcome, WriteOutcome,
};
pub use event::EventId;
pub use rng::SplitMix64;
pub use kernel::{Api, Kernel, Suspension};
pub use process::{Activation, Process, ProcessId};
pub use stats::KernelStats;
pub use time::{Duration, Time};
