//! Kernel-resident communication channels.
//!
//! Two channel families model the paper's relations between application
//! functions:
//!
//! * **Rendezvous** — both sides block until the other arrives; the exchange
//!   instant is the later of the two arrivals (paper footnote 1: "functions
//!   … communicate over a rendezvous protocol which implies they wait on
//!   each other to exchange data").
//! * **FIFO** — bounded queue; a writer blocks only when the queue is full,
//!   a reader only when it is empty (the paper's Section III.B extension:
//!   "communications … performed through FIFO channels").
//!
//! Rendezvous channels additionally support a **listen/accept** protocol used
//! by the equivalent model's `Reception` process (paper Fig. 4): a listener
//! is woken when an offer arrives but the transfer is only completed by an
//! explicit [`Api::accept`](crate::Api::accept) — at the *computed* evolution
//! instant rather than immediately.

use std::collections::VecDeque;

use crate::process::ProcessId;
use crate::time::Time;

/// Identifier of a channel registered with a [`Kernel`](crate::Kernel).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub(crate) usize);

impl ChannelId {
    /// The raw index (useful for diagnostics and per-channel statistics).
    pub fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Result of a completed channel operation, delivered to a process that was
/// parked with [`Activation::Blocked`](crate::Activation::Blocked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion<P> {
    /// A blocked write finished (the exchange instant is the wake time).
    WriteDone,
    /// A blocked read finished with this value.
    Read(P),
    /// A listener was informed of a pending offer made at the given instant.
    /// The transfer has *not* happened; complete it with
    /// [`Api::accept`](crate::Api::accept).
    Offer(Time),
}

/// Immediate result of a write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write completed at the current instant.
    Done,
    /// The writer must park ([`Activation::Blocked`](crate::Activation::Blocked));
    /// it will be woken with [`Completion::WriteDone`].
    Blocked,
}

/// Immediate result of a read attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome<P> {
    /// The read completed at the current instant with this value.
    Done(P),
    /// The reader must park; it will be woken with [`Completion::Read`].
    Blocked,
}

/// Immediate result of a listen attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListenOutcome {
    /// A writer is already waiting; its offer was made at the given instant.
    Offered(Time),
    /// No offer yet; the listener parks and will be woken with
    /// [`Completion::Offer`].
    Blocked,
}

pub(crate) enum ChannelState<P> {
    Rendezvous(RendezvousState<P>),
    Fifo(FifoState<P>),
}

pub(crate) enum RendezvousState<P> {
    Idle,
    /// A writer parked with its value; `since` is the offer instant.
    WriterWaiting {
        writer: ProcessId,
        value: P,
        since: Time,
    },
    /// A reader parked on a plain `read`.
    ReaderWaiting(ProcessId),
    /// A reader parked on `listen` (deferred-accept protocol).
    Listening(ProcessId),
}

pub(crate) struct FifoState<P> {
    pub capacity: usize,
    pub queue: VecDeque<P>,
    pub pending_writers: VecDeque<(ProcessId, P)>,
    pub pending_reader: Option<ProcessId>,
}

impl<P> ChannelState<P> {
    pub(crate) fn rendezvous() -> Self {
        ChannelState::Rendezvous(RendezvousState::Idle)
    }

    pub(crate) fn fifo(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be at least 1");
        ChannelState::Fifo(FifoState {
            capacity,
            queue: VecDeque::new(),
            pending_writers: VecDeque::new(),
            pending_reader: None,
        })
    }
}

/// Per-channel bookkeeping: exchange-instant logs and transfer counts.
///
/// `write_instants[k]` is the instant the `(k+1)`-th write *completed* on the
/// channel — the paper's `xMi(k)` for relation `Mi`. For rendezvous channels
/// read and write instants coincide.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelLog {
    /// Completion instant of each write, in order.
    pub write_instants: Vec<Time>,
    /// Completion instant of each read, in order.
    pub read_instants: Vec<Time>,
}

impl ChannelLog {
    /// Number of completed transfers (writes).
    pub fn transfers(&self) -> u64 {
        self.write_instants.len() as u64
    }
}
