//! Notification events — the analogue of SystemC's `sc_event`.
//!
//! A process suspends on an event with
//! [`Activation::WaitEvent`](crate::Activation::WaitEvent); any other process
//! wakes all current waiters with [`Api::notify`](crate::Api::notify)
//! (immediately, in the current delta cycle) or
//! [`Api::notify_after`](crate::Api::notify_after) (at a future instant).

use crate::process::ProcessId;

/// Identifier of an event registered with a [`Kernel`](crate::Kernel).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) usize);

impl EventId {
    /// The raw index (useful for diagnostics).
    pub fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for EventId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "E{}", self.0)
    }
}

#[derive(Debug, Default)]
pub(crate) struct EventState {
    pub waiters: Vec<ProcessId>,
}
