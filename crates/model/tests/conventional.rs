//! Semantic tests of the conventional event-driven model on the paper's
//! didactic example, with hand-computed evolution instants.

use evolve_des::{Duration, Time};
use evolve_model::{
    didactic, elaborate, Application, Architecture, Behavior, Concurrency, Environment,
    LoadModel, Mapping, Platform, RelationKind, ResourceId, ResourceTrace, Stimulus, UsageSeries,
};

fn t(ticks: u64) -> Time {
    Time::from_ticks(ticks)
}

/// Constant-load didactic parameters: Ti1=10, Tj1=20, Ti2=30, Ti3=40,
/// Tj3=50, Ti4=60 ticks (per-unit terms zero).
fn const_params() -> didactic::Params {
    didactic::Params {
        ti1: (10, 0),
        tj1: (20, 0),
        ti2: (30, 0),
        ti3: (40, 0),
        tj3: (50, 0),
        ti4: (60, 0),
    }
}

#[test]
fn didactic_first_iteration_instants() {
    let d = didactic::chained(1, const_params()).unwrap();
    let env = Environment::new().stimulus(d.input(), Stimulus::saturating(1, |_| 0));
    let report = elaborate(&d.arch, &env).unwrap().run();

    let s = &d.stages[0];
    // Hand-derived (see module docs of `didactic` for the behaviours):
    // xM1(0)=0; F1: Ti1 0→10, M2 at 10; Tj1 10→30, M3 at 30;
    // F3: Ti2 30→60; F2: Ti3 waits for Tj1 end → 30→70, M4 at 70 (writer
    // ready 60, reader ready 70); Tj3 70→120, M5 at 120; F4: Ti4 120→180,
    // M6 at 180.
    assert_eq!(report.instants(s.m1), &[t(0)]);
    assert_eq!(report.instants(s.m2), &[t(10)]);
    assert_eq!(report.instants(s.m3), &[t(30)]);
    assert_eq!(report.instants(s.m4), &[t(70)]);
    assert_eq!(report.instants(s.m5), &[t(120)]);
    assert_eq!(report.instants(s.m6), &[t(180)]);
}

#[test]
fn didactic_second_iteration_respects_static_schedule() {
    let d = didactic::chained(1, const_params()).unwrap();
    let env = Environment::new().stimulus(d.input(), Stimulus::saturating(2, |_| 0));
    let report = elaborate(&d.arch, &env).unwrap().run();

    let s = &d.stages[0];
    // F1 is back at read(M1) at t=30 (after writing M3), so xM1(1)=30.
    assert_eq!(report.instants(s.m1), &[t(0), t(30)]);
    // P1's static cycle is [Ti1, Tj1, Ti3, Tj3]; Ti1(1) must wait for
    // Tj3(0) to end at 120: Ti1(1) 120→130, M2 exchange when F2 reads
    // again after writing M5(0) at 120 → max(130, 120) = 130.
    assert_eq!(report.instants(s.m2), &[t(10), t(130)]);
    // Tj1(1) 130→150, F3 ready (idle since 60) → M3 at 150.
    assert_eq!(report.instants(s.m3), &[t(30), t(150)]);
    // F3: Ti2(1) 150→180 (P2 unlimited). F2's Ti3(1) must wait for Tj1(1)
    // to end on sequential P1: 150→190, so M4 exchanges at max(180, 190).
    assert_eq!(report.instants(s.m4), &[t(70), t(190)]);
    // Tj3(1) 190→240; M5 at 240 (F4 idle since 180).
    assert_eq!(report.instants(s.m5), &[t(120), t(240)]);
    // Ti4(1) 240→300.
    assert_eq!(report.instants(s.m6), &[t(180), t(300)]);
}

#[test]
fn source_offers_are_back_pressured() {
    // With a period shorter than the throughput, u(k) = completion of the
    // previous offer; with a long period, u(k) = the schedule.
    let d = didactic::chained(1, const_params()).unwrap();
    let env = Environment::new().stimulus(
        d.input(),
        Stimulus::periodic(3, Duration::from_ticks(1_000), |_| 0),
    );
    let report = elaborate(&d.arch, &env).unwrap().run();
    // Period 1000 is far beyond the pipeline latency: offers at schedule.
    assert_eq!(report.instants(d.input()), &[t(0), t(1_000), t(2_000)]);
}

#[test]
fn unlimited_resource_runs_functions_concurrently() {
    // Two independent chains on one unlimited resource: both execute at
    // their data-ready instants with no mutual delay.
    let mut app = Application::new();
    let in1 = app.add_input("in1", RelationKind::Rendezvous);
    let in2 = app.add_input("in2", RelationKind::Rendezvous);
    let out1 = app.add_output("out1", RelationKind::Rendezvous);
    let out2 = app.add_output("out2", RelationKind::Rendezvous);
    let f1 = app.add_function(
        "A",
        Behavior::new()
            .read(in1)
            .execute(LoadModel::Constant(100))
            .write(out1),
    );
    let f2 = app.add_function(
        "B",
        Behavior::new()
            .read(in2)
            .execute(LoadModel::Constant(100))
            .write(out2),
    );
    let mut platform = Platform::new();
    let hw = platform.add_resource("HW", Concurrency::Unlimited, 1);
    let mut mapping = Mapping::new();
    mapping.assign(f1, hw).assign(f2, hw);
    let arch = Architecture::new(app, platform, mapping).unwrap();
    let env = Environment::new()
        .stimulus(in1, Stimulus::saturating(1, |_| 0))
        .stimulus(in2, Stimulus::saturating(1, |_| 0));
    let report = elaborate(&arch, &env).unwrap().run();
    assert_eq!(report.instants(out1), &[t(100)]);
    assert_eq!(report.instants(out2), &[t(100)], "no serialization on HW");
}

#[test]
fn sequential_resource_serializes_in_static_order() {
    // The same two chains on a sequential resource: B waits for A.
    let mut app = Application::new();
    let in1 = app.add_input("in1", RelationKind::Rendezvous);
    let in2 = app.add_input("in2", RelationKind::Rendezvous);
    let out1 = app.add_output("out1", RelationKind::Rendezvous);
    let out2 = app.add_output("out2", RelationKind::Rendezvous);
    let f1 = app.add_function(
        "A",
        Behavior::new()
            .read(in1)
            .execute(LoadModel::Constant(100))
            .write(out1),
    );
    let f2 = app.add_function(
        "B",
        Behavior::new()
            .read(in2)
            .execute(LoadModel::Constant(100))
            .write(out2),
    );
    let mut platform = Platform::new();
    let cpu = platform.add_resource("CPU", Concurrency::Sequential, 1);
    let mut mapping = Mapping::new();
    mapping.assign(f1, cpu).assign(f2, cpu);
    let arch = Architecture::new(app, platform, mapping).unwrap();
    let env = Environment::new()
        .stimulus(in1, Stimulus::saturating(1, |_| 0))
        .stimulus(in2, Stimulus::saturating(1, |_| 0));
    let report = elaborate(&arch, &env).unwrap().run();
    assert_eq!(report.instants(out1), &[t(100)]);
    assert_eq!(report.instants(out2), &[t(200)], "B serialized after A");
}

#[test]
fn limited_concurrency_two_servers() {
    // Three chains on a Limited(2) resource: the third execute waits for
    // the first to end.
    let mut app = Application::new();
    let mut platform = Platform::new();
    let res = platform.add_resource("R", Concurrency::Limited(2), 1);
    let mut mapping = Mapping::new();
    let mut ins = Vec::new();
    let mut outs = Vec::new();
    for i in 0..3 {
        let input = app.add_input(format!("in{i}"), RelationKind::Rendezvous);
        let output = app.add_output(format!("out{i}"), RelationKind::Rendezvous);
        let f = app.add_function(
            format!("F{i}"),
            Behavior::new()
                .read(input)
                .execute(LoadModel::Constant(100))
                .write(output),
        );
        mapping.assign(f, res);
        ins.push(input);
        outs.push(output);
    }
    let arch = Architecture::new(app, platform, mapping).unwrap();
    let mut env = Environment::new();
    for input in &ins {
        env = env.stimulus(*input, Stimulus::saturating(1, |_| 0));
    }
    let report = elaborate(&arch, &env).unwrap().run();
    assert_eq!(report.instants(outs[0]), &[t(100)]);
    assert_eq!(report.instants(outs[1]), &[t(100)], "two servers in parallel");
    assert_eq!(report.instants(outs[2]), &[t(200)], "third waits for a server");
}

#[test]
fn fifo_decouples_producer_from_consumer() {
    // producer -> fifo(3) -> consumer with slow consumer: the producer's
    // first writes complete immediately.
    let mut app = Application::new();
    let input = app.add_input("in", RelationKind::Rendezvous);
    let queue = app.add_relation("q", RelationKind::Fifo(3));
    let output = app.add_output("out", RelationKind::Rendezvous);
    let prod = app.add_function(
        "prod",
        Behavior::new()
            .read(input)
            .execute(LoadModel::Constant(10))
            .write(queue),
    );
    let cons = app.add_function(
        "cons",
        Behavior::new()
            .read(queue)
            .execute(LoadModel::Constant(100))
            .write(output),
    );
    let mut platform = Platform::new();
    let p1 = platform.add_resource("P1", Concurrency::Sequential, 1);
    let p2 = platform.add_resource("P2", Concurrency::Sequential, 1);
    let mut mapping = Mapping::new();
    mapping.assign(prod, p1).assign(cons, p2);
    let arch = Architecture::new(app, platform, mapping).unwrap();
    let env = Environment::new().stimulus(input, Stimulus::saturating(5, |_| 0));
    let report = elaborate(&arch, &env).unwrap().run();
    // Producer: exec 10 ticks each, writes at 10, 20, 30, then the fifo is
    // full (3 in flight, consumer popped one at 10): write 4 at 40 fits
    // (pop at 10), write 5 waits for the pop at 110.
    let writes = report.instants(queue);
    assert_eq!(writes[0], t(10));
    assert_eq!(writes[1], t(20));
    assert_eq!(writes[2], t(30));
    // Consumer pops at 10, 110, 210, 310, 410; outputs at 110..510.
    assert_eq!(
        report.instants(output),
        &[t(110), t(210), t(310), t(410), t(510)]
    );
    // The 5th write completed when the queue had space again.
    assert!(writes[4] > t(30), "last write back-pressured: {:?}", writes);
}

#[test]
fn exec_records_capture_all_work() {
    let d = didactic::chained(1, const_params()).unwrap();
    let env = Environment::new().stimulus(d.input(), Stimulus::saturating(4, |_| 0));
    let report = elaborate(&d.arch, &env).unwrap().run();
    // 6 executes per iteration × 4 iterations.
    assert_eq!(report.exec_records.len(), 24);
    let total_ops: u64 = report.exec_records.iter().map(|r| r.ops).sum();
    assert_eq!(total_ops, 4 * (10 + 20 + 30 + 40 + 50 + 60));
    // P1's busy time equals its serial work: 4 × (10+20+40+50).
    let p1 = ResourceTrace::from_records(&report.exec_records, ResourceId::from_index(0));
    assert_eq!(p1.busy_ticks(), 4 * 120);
    // Usage series integrates to the ops actually performed on P1.
    let usage = UsageSeries::from_records(&report.exec_records, ResourceId::from_index(0), 10);
    assert!((usage.total_ops() - (4.0 * 120.0)).abs() < 1e-6);
}

#[test]
fn runs_are_deterministic() {
    let d = didactic::chained(2, didactic::Params::default()).unwrap();
    let run = || {
        let env = Environment::new().stimulus(
            d.input(),
            Stimulus::periodic(50, Duration::from_ticks(500), evolve_model::varying_sizes(8, 64, 7)),
        );
        let r = elaborate(&d.arch, &env).unwrap().run();
        (
            r.end_time,
            r.relation_logs.clone(),
            r.exec_records.len(),
            r.stats,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn all_tokens_flow_through_chained_stages() {
    let d = didactic::chained(3, didactic::Params::default()).unwrap();
    let env = Environment::new().stimulus(
        d.input(),
        Stimulus::periodic(20, Duration::from_ticks(100), |k| k % 13),
    );
    let report = elaborate(&d.arch, &env).unwrap().run();
    assert_eq!(report.instants(d.output()).len(), 20);
    // Outputs are strictly increasing (rendezvous pipeline, nonzero work).
    let outs = report.instants(d.output());
    assert!(outs.windows(2).all(|w| w[0] < w[1]));
    // Every relation carried exactly 20 tokens.
    for (i, log) in report.relation_logs.iter().enumerate() {
        assert_eq!(log.transfers(), 20, "relation {i}");
    }
}

#[test]
fn missing_stimulus_is_reported() {
    let d = didactic::chained(1, const_params()).unwrap();
    let err = elaborate(&d.arch, &Environment::new()).unwrap_err();
    assert!(err.to_string().contains("no stimulus"));
}

#[test]
fn size_dependent_loads_change_timing() {
    let d = didactic::chained(1, didactic::Params::default()).unwrap();
    let run = |size: u64| {
        let env =
            Environment::new().stimulus(d.input(), Stimulus::saturating(1, move |_| size));
        elaborate(&d.arch, &env).unwrap().run().end_time
    };
    assert!(run(100) > run(1), "larger data takes longer");
}
