//! Conventional (fully event-driven) model elaboration.
//!
//! This module turns an [`Architecture`] plus an [`Environment`] into a
//! running [`Simulation`] on the `evolve-des` kernel, exactly the way a
//! SystemC performance model is structured (paper Fig. 1):
//!
//! * one interpreter process per application function, executing its
//!   behaviour loop and blocking on every relation exchange;
//! * one arbiter per processing resource enforcing the static,
//!   non-preemptive schedule;
//! * one source process per external input (the paper's `F0`) and one sink
//!   per external output.
//!
//! Every exchange and every resource wait goes through the kernel — this is
//! the event-rich baseline whose instants the equivalent model must
//! reproduce with far fewer events.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use evolve_des::{
    Activation, Api, ChannelId, ChannelLog, Completion, EventId, Kernel, KernelStats, ReadOutcome,
    Time, WriteOutcome,
};

use crate::app::{RelationKind, Stmt};
use crate::ids::{FunctionId, RelationId, ResourceId};
use crate::mapping::Architecture;
use crate::observe::ExecRecord;
use crate::platform::Concurrency;
use crate::stimulus::Stimulus;
use crate::token::Token;
use crate::workload::{duration_for, LoadContext};
use crate::ModelError;

/// Shared execution-record trace filled in while the simulation runs.
pub type SharedTrace = Rc<RefCell<Vec<ExecRecord>>>;

/// The environment of an architecture: a stimulus per external input.
#[derive(Clone, Debug, Default)]
pub struct Environment {
    /// Stimulus per external-input relation.
    pub stimuli: BTreeMap<RelationId, Stimulus>,
}

impl Environment {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Environment::default()
    }

    /// Sets the stimulus of an external input.
    pub fn stimulus(mut self, input: RelationId, stimulus: Stimulus) -> Self {
        self.stimuli.insert(input, stimulus);
        self
    }
}

// ---------------------------------------------------------------------------
// Resource arbitration
// ---------------------------------------------------------------------------

/// Shared state of one resource arbiter.
///
/// Slots (execute-statement instances) are granted **strictly in static
/// schedule order**; slot `i` may start once slot `i − 1` has started and
/// slot `i − servers` has ended. `Unlimited` resources grant immediately.
pub(crate) struct ResourceState {
    concurrency: Concurrency,
    speed: u64,
    /// Number of slots started so far (starts are strictly ordered).
    started: u64,
    /// Completion flags for slots `>= ended_watermark`.
    ended: BTreeMap<u64, ()>,
    /// All slots below this index have ended.
    ended_watermark: u64,
    /// Parked requesters: slot index → event to notify when it may start.
    waiters: BTreeMap<u64, EventId>,
}

impl ResourceState {
    fn new(concurrency: Concurrency, speed: u64) -> Self {
        ResourceState {
            concurrency,
            speed,
            started: 0,
            ended: BTreeMap::new(),
            ended_watermark: 0,
            waiters: BTreeMap::new(),
        }
    }

    fn has_ended(&self, slot: u64) -> bool {
        slot < self.ended_watermark || self.ended.contains_key(&slot)
    }

    fn can_start(&self, slot: u64) -> bool {
        match self.concurrency.servers() {
            None => true,
            Some(n) => {
                slot == self.started
                    && (slot < u64::from(n) || self.has_ended(slot - u64::from(n)))
            }
        }
    }

    /// Attempts to start `slot`; on success records the start and returns
    /// any newly-startable waiter to notify.
    fn try_start(&mut self, slot: u64) -> Result<Option<EventId>, ()> {
        if !self.can_start(slot) {
            return Err(());
        }
        if self.concurrency.servers().is_some() {
            debug_assert_eq!(slot, self.started);
            self.started += 1;
            // Starting this slot may allow the next one to start (e.g. on a
            // multi-server resource with a free server).
            let next = self.started;
            if self.can_start(next) {
                if let Some(ev) = self.waiters.remove(&next) {
                    return Ok(Some(ev));
                }
            }
        }
        Ok(None)
    }

    /// Records the completion of `slot` and returns a waiter that may now
    /// start, if any.
    fn finish(&mut self, slot: u64) -> Option<EventId> {
        self.concurrency.servers()?;
        self.ended.insert(slot, ());
        while self.ended.remove(&self.ended_watermark).is_some() {
            self.ended_watermark += 1;
        }
        let next = self.started;
        if self.can_start(next) {
            self.waiters.remove(&next)
        } else {
            None
        }
    }

    fn park(&mut self, slot: u64, event: EventId) {
        self.waiters.insert(slot, event);
    }
}

/// Shared handle to a resource arbiter.
#[derive(Clone)]
pub(crate) struct ResourceCtrl(Rc<RefCell<ResourceState>>);

impl ResourceCtrl {
    pub(crate) fn new(concurrency: Concurrency, speed: u64) -> Self {
        ResourceCtrl(Rc::new(RefCell::new(ResourceState::new(
            concurrency,
            speed,
        ))))
    }

    fn speed(&self) -> u64 {
        self.0.borrow().speed
    }
}

// ---------------------------------------------------------------------------
// Function interpreter process
// ---------------------------------------------------------------------------

enum Phase {
    /// Ready to execute the statement at `pc`.
    AtStmt,
    /// Parked waiting for the resource grant of `slot`.
    WaitGrant { slot: u64, ops: u64 },
    /// Executing: wake at `end`, then release the slot.
    Running {
        slot: u64,
        ops: u64,
        start: Time,
    },
}

/// Interpreter of one application function's behaviour loop.
struct FunctionProcess {
    name: String,
    function: FunctionId,
    stmts: Vec<Stmt>,
    channels: Vec<ChannelId>,
    resource: ResourceId,
    ctrl: ResourceCtrl,
    grant_event: EventId,
    /// Position of each execute statement in the resource's static schedule.
    slot_pos: BTreeMap<usize, usize>,
    /// Slots per iteration on the mapped resource.
    sched_len: u64,
    size_model: crate::token::SizeModel,
    trace: SharedTrace,
    pc: usize,
    k: u64,
    current_size: u64,
    phase: Phase,
}

impl FunctionProcess {
    fn advance(&mut self) {
        self.pc += 1;
        if self.pc == self.stmts.len() {
            self.pc = 0;
            self.k += 1;
        }
    }
}

impl evolve_des::Process<Token> for FunctionProcess {
    fn resume(&mut self, api: &mut Api<'_, Token>) -> Activation {
        // Resolve a completion from a blocking channel operation.
        if let Some(c) = api.take_completion() {
            match c {
                Completion::Read(token) => {
                    self.current_size = token.size;
                    self.advance();
                }
                Completion::WriteDone => self.advance(),
                Completion::Offer(_) => {
                    unreachable!("function processes never listen")
                }
            }
        }
        // Resolve an execution phase.
        match std::mem::replace(&mut self.phase, Phase::AtStmt) {
            Phase::AtStmt => {}
            Phase::WaitGrant { slot, ops } => {
                // Woken by the arbiter: retry the grant.
                let attempt = self.ctrl.0.borrow_mut().try_start(slot);
                match attempt {
                    Ok(waker) => {
                        if let Some(ev) = waker {
                            api.notify(ev);
                        }
                        let start = api.now();
                        let dur = duration_for(ops, self.ctrl.speed());
                        self.phase = Phase::Running { slot, ops, start };
                        return Activation::WaitFor(dur);
                    }
                    Err(()) => {
                        self.ctrl.0.borrow_mut().park(slot, self.grant_event);
                        self.phase = Phase::WaitGrant { slot, ops };
                        return Activation::WaitEvent(self.grant_event);
                    }
                }
            }
            Phase::Running { slot, ops, start } => {
                // Execution finished: release and record.
                if let Some(ev) = self.ctrl.0.borrow_mut().finish(slot) {
                    api.notify(ev);
                }
                self.trace.borrow_mut().push(ExecRecord {
                    resource: self.resource,
                    function: self.function,
                    stmt: self.pc,
                    k: self.k,
                    start,
                    end: api.now(),
                    ops,
                });
                self.advance();
            }
        }
        // Run statements until the next suspension.
        loop {
            match &self.stmts[self.pc] {
                Stmt::Read(rel) => match api.read(self.channels[rel.index()]) {
                    ReadOutcome::Done(token) => {
                        self.current_size = token.size;
                        self.advance();
                    }
                    ReadOutcome::Blocked => return Activation::Blocked,
                },
                Stmt::Write(rel) => {
                    let token = Token::new(self.size_model.apply(self.current_size), self.k);
                    match api.write(self.channels[rel.index()], token) {
                        WriteOutcome::Done => self.advance(),
                        WriteOutcome::Blocked => return Activation::Blocked,
                    }
                }
                Stmt::Execute(load) => {
                    let ops = load.ops(LoadContext {
                        function: self.function.index(),
                        stmt: self.pc,
                        k: self.k,
                        size: self.current_size,
                    });
                    let pos = self.slot_pos[&self.pc] as u64;
                    let slot = self.k * self.sched_len + pos;
                    let attempt = self.ctrl.0.borrow_mut().try_start(slot);
                    match attempt {
                        Ok(waker) => {
                            if let Some(ev) = waker {
                                api.notify(ev);
                            }
                            let start = api.now();
                            let dur = duration_for(ops, self.ctrl.speed());
                            self.phase = Phase::Running { slot, ops, start };
                            return Activation::WaitFor(dur);
                        }
                        Err(()) => {
                            self.ctrl.0.borrow_mut().park(slot, self.grant_event);
                            self.phase = Phase::WaitGrant { slot, ops };
                            return Activation::WaitEvent(self.grant_event);
                        }
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// ---------------------------------------------------------------------------
// Environment processes
// ---------------------------------------------------------------------------

/// Offers tokens into an external input per its stimulus schedule — the
/// paper's `F0`. The k-th offer happens at `max(schedule(k), completion of
/// offer k−1)`, which is exactly the paper's `u(k)`.
pub(crate) struct SourceProcess {
    name: String,
    channel: ChannelId,
    arrivals: Vec<crate::stimulus::Arrival>,
    idx: usize,
}

impl evolve_des::Process<Token> for SourceProcess {
    fn resume(&mut self, api: &mut Api<'_, Token>) -> Activation {
        if let Some(Completion::WriteDone) = api.take_completion() {
            self.idx += 1;
        }
        loop {
            let Some(arrival) = self.arrivals.get(self.idx) else {
                return Activation::Done;
            };
            if api.now() < arrival.at {
                return Activation::WaitFor(arrival.at.since(api.now()));
            }
            let token = Token::new(arrival.size, self.idx as u64);
            match api.write(self.channel, token) {
                WriteOutcome::Done => self.idx += 1,
                WriteOutcome::Blocked => return Activation::Blocked,
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Always-ready consumer of an external output.
pub(crate) struct SinkProcess {
    name: String,
    channel: ChannelId,
    remaining: Option<u64>,
}

impl evolve_des::Process<Token> for SinkProcess {
    fn resume(&mut self, api: &mut Api<'_, Token>) -> Activation {
        if let Some(Completion::Read(_)) = api.take_completion() {
            if let Some(n) = &mut self.remaining {
                *n -= 1;
            }
        }
        loop {
            if self.remaining == Some(0) {
                return Activation::Done;
            }
            match api.read(self.channel) {
                ReadOutcome::Done(_) => {
                    if let Some(n) = &mut self.remaining {
                        *n -= 1;
                    }
                }
                ReadOutcome::Blocked => return Activation::Blocked,
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// ---------------------------------------------------------------------------
// Elaboration and simulation driving
// ---------------------------------------------------------------------------

/// Creates one kernel channel per relation, honouring relation kinds.
pub fn create_channels(kernel: &mut Kernel<Token>, arch: &Architecture) -> Vec<ChannelId> {
    arch.app()
        .relations()
        .iter()
        .map(|r| match r.kind {
            RelationKind::Rendezvous => kernel.add_rendezvous(),
            RelationKind::Fifo(cap) => kernel.add_fifo(cap),
        })
        .collect()
}

/// Spawns source and sink processes for all external relations.
///
/// `expected_outputs` bounds each sink so the simulation terminates; pass
/// `None` for an unbounded sink.
///
/// # Errors
///
/// Returns [`ModelError::MissingStimulus`] if an external input has no
/// stimulus in `env`.
pub fn attach_environment(
    kernel: &mut Kernel<Token>,
    arch: &Architecture,
    env: &Environment,
    channels: &[ChannelId],
    expected_outputs: Option<u64>,
) -> Result<(), ModelError> {
    for input in arch.app().external_inputs() {
        let stimulus = env.stimuli.get(&input).ok_or_else(|| {
            ModelError::MissingStimulus {
                relation: input,
                name: arch.app().relation(input).name.clone(),
            }
        })?;
        kernel.spawn(
            format!("source:{}", arch.app().relation(input).name),
            SourceProcess {
                name: format!("source:{}", arch.app().relation(input).name),
                channel: channels[input.index()],
                arrivals: stimulus.arrivals().to_vec(),
                idx: 0,
            },
        );
    }
    for output in arch.app().external_outputs() {
        kernel.spawn(
            format!("sink:{}", arch.app().relation(output).name),
            SinkProcess {
                name: format!("sink:{}", arch.app().relation(output).name),
                channel: channels[output.index()],
                remaining: expected_outputs,
            },
        );
    }
    Ok(())
}

/// A ready-to-run conventional simulation.
pub struct Simulation {
    kernel: Kernel<Token>,
    channels: Vec<ChannelId>,
    trace: SharedTrace,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("relations", &self.channels.len())
            .finish()
    }
}

/// Builds the conventional, fully event-driven model of an architecture.
///
/// # Errors
///
/// Returns a [`ModelError`] if an external input lacks a stimulus.
///
/// # Examples
///
/// See [`crate::didactic`] and the crate-level documentation.
pub fn elaborate(arch: &Architecture, env: &Environment) -> Result<Simulation, ModelError> {
    let mut kernel = Kernel::new();
    let channels = create_channels(&mut kernel, arch);
    let trace: SharedTrace = Rc::new(RefCell::new(Vec::new()));

    spawn_function_processes(&mut kernel, arch, &channels, &trace, |_| true);

    // Environment: bound sinks by the total stimulus volume so runs end.
    let total_inputs: u64 = env.stimuli.values().map(|s| s.len() as u64).sum();
    attach_environment(&mut kernel, arch, env, &channels, Some(total_inputs))?;

    Ok(Simulation {
        kernel,
        channels,
        trace,
    })
}

/// Spawns interpreter processes (and the resource arbiters they share) for
/// the functions selected by `include`.
///
/// Used by hybrid elaborations (partial abstraction in `evolve-core`) that
/// keep part of the application event-driven while the rest is computed.
/// Resources are arbitrated per call: functions sharing a resource must
/// all be spawned by the same invocation.
pub fn spawn_function_processes(
    kernel: &mut Kernel<Token>,
    arch: &Architecture,
    channels: &[ChannelId],
    trace: &SharedTrace,
    include: impl Fn(FunctionId) -> bool,
) {
    // Resource arbiters, shared by the included functions.
    let ctrls: Vec<ResourceCtrl> = arch
        .platform()
        .resources()
        .iter()
        .map(|r| ResourceCtrl::new(r.concurrency, r.speed_ops_per_tick))
        .collect();

    for (idx, function) in arch.app().functions().iter().enumerate() {
        let fid = FunctionId::from_index(idx);
        if !include(fid) {
            continue;
        }
        let resource = arch
            .mapping()
            .resource_of(fid)
            .expect("architecture validated: every function mapped");
        let schedule = arch.schedule(resource);
        let slot_pos: BTreeMap<usize, usize> = function
            .behavior
            .execute_indices()
            .into_iter()
            .map(|stmt| {
                (
                    stmt,
                    schedule
                        .position(fid, stmt)
                        .expect("every execute statement is scheduled"),
                )
            })
            .collect();
        let grant_event = kernel.add_event();
        kernel.spawn(
            function.name.clone(),
            FunctionProcess {
                name: function.name.clone(),
                function: fid,
                stmts: function.behavior.stmts().to_vec(),
                channels: channels.to_vec(),
                resource,
                ctrl: ctrls[resource.index()].clone(),
                grant_event,
                slot_pos,
                sched_len: schedule.len() as u64,
                size_model: function.size_model,
                trace: trace.clone(),
                pc: 0,
                k: 0,
                current_size: 0,
                phase: Phase::AtStmt,
            },
        );
    }
}

impl Simulation {
    /// Runs the simulation to completion and reports results.
    pub fn run(mut self) -> RunReport {
        let wall_start = std::time::Instant::now();
        let end_time = self.kernel.run();
        let wall = wall_start.elapsed();
        let stats = self.kernel.stats();
        let relation_logs = self
            .channels
            .iter()
            .map(|ch| self.kernel.channel_log(*ch).clone())
            .collect();
        RunReport {
            end_time,
            stats,
            relation_logs,
            exec_records: Rc::try_unwrap(self.trace)
                .map(RefCell::into_inner)
                .unwrap_or_else(|rc| rc.borrow().clone()),
            wall,
        }
    }

    /// Mutable access to the kernel (for custom processes in tests).
    pub fn kernel_mut(&mut self) -> &mut Kernel<Token> {
        &mut self.kernel
    }

    /// The kernel channel backing each relation, indexed by [`RelationId`].
    pub fn channels(&self) -> &[ChannelId] {
        &self.channels
    }

    /// The shared execution trace (filled while running).
    pub fn trace(&self) -> SharedTrace {
        self.trace.clone()
    }
}

/// Results of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Final simulation time.
    pub end_time: Time,
    /// Kernel activity counters.
    pub stats: KernelStats,
    /// Exchange-instant logs per relation, indexed by [`RelationId`].
    pub relation_logs: Vec<ChannelLog>,
    /// All completed executions (for resource-usage observation).
    pub exec_records: Vec<ExecRecord>,
    /// Host wall-clock time of the run.
    pub wall: std::time::Duration,
}

impl RunReport {
    /// The write-exchange instants of a relation (the paper's `xMi(k)`).
    pub fn instants(&self, relation: RelationId) -> &[Time] {
        &self.relation_logs[relation.index()].write_instants
    }

    /// Total relation-exchange events in the run.
    pub fn relation_events(&self) -> u64 {
        self.relation_logs.iter().map(ChannelLog::transfers).sum()
    }
}
