//! Application model: functions, behaviours, and relations.
//!
//! An application is modeled exactly as in the paper's Fig. 1: a set of
//! functions, each an infinite loop over the primitives `read`, `execute`,
//! and `write`, connected by relations (`M1`, `M2`, …). Relations crossing
//! the application boundary (no internal producer or consumer) connect to
//! the simulated environment.

use crate::ids::{FunctionId, RelationId};
use crate::token::SizeModel;
use crate::workload::LoadModel;
use crate::ModelError;

/// One statement of a function behaviour — the paper's primitive set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Blocking read of one token from a relation (`read(Mi, token)`).
    Read(RelationId),
    /// Computation on the mapped resource (`execute(token)`); the load may
    /// depend on the size of the last token read this iteration.
    Execute(LoadModel),
    /// Blocking write of one token to a relation (`write(Mi, token)`).
    Write(RelationId),
}

/// A function behaviour: the loop body executed forever (`while(1) { … }`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Behavior {
    stmts: Vec<Stmt>,
}

impl Behavior {
    /// Creates an empty behaviour; chain [`Behavior::read`],
    /// [`Behavior::execute`], [`Behavior::write`] to fill the loop body.
    pub fn new() -> Self {
        Behavior::default()
    }

    /// Appends a blocking read from `relation`.
    #[must_use]
    pub fn read(mut self, relation: RelationId) -> Self {
        self.stmts.push(Stmt::Read(relation));
        self
    }

    /// Appends an execute with the given load model.
    #[must_use]
    pub fn execute(mut self, load: LoadModel) -> Self {
        self.stmts.push(Stmt::Execute(load));
        self
    }

    /// Appends a blocking write to `relation`.
    #[must_use]
    pub fn write(mut self, relation: RelationId) -> Self {
        self.stmts.push(Stmt::Write(relation));
        self
    }

    /// The loop-body statements in program order.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Indices of the `Execute` statements, in program order.
    pub fn execute_indices(&self) -> Vec<usize> {
        self.stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Stmt::Execute(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns `true` when the behaviour has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

/// How a relation synchronizes its producer and consumer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelationKind {
    /// Rendezvous: both parties block until the exchange (paper footnote 1).
    Rendezvous,
    /// Bounded FIFO of the given capacity (paper Section III.B extension).
    Fifo(usize),
}

/// A typed point-to-point relation between two functions (or the
/// environment at the application boundary).
#[derive(Clone, Debug)]
pub struct Relation {
    /// Diagnostic name (`"M1"`, …).
    pub name: String,
    /// Synchronization protocol.
    pub kind: RelationKind,
    /// Producing function; `None` for an external input.
    pub producer: Option<FunctionId>,
    /// Consuming function; `None` for an external output.
    pub consumer: Option<FunctionId>,
}

/// An application function.
#[derive(Clone, Debug)]
pub struct Function {
    /// Diagnostic name (`"F1"`, …).
    pub name: String,
    /// The loop body.
    pub behavior: Behavior,
    /// Size transformation applied to forwarded tokens.
    pub size_model: SizeModel,
}

/// The application model: functions plus relations.
///
/// Build with [`Application::new`] and the `add_*` methods, then seal with
/// [`Application::validate`] (also called by the architecture builder).
///
/// # Examples
///
/// A two-function pipeline:
///
/// ```
/// use evolve_model::{Application, Behavior, LoadModel, RelationKind};
///
/// # fn main() -> Result<(), evolve_model::ModelError> {
/// let mut app = Application::new();
/// let input = app.add_input("in", RelationKind::Rendezvous);
/// let mid = app.add_relation("mid", RelationKind::Rendezvous);
/// let output = app.add_output("out", RelationKind::Rendezvous);
/// app.add_function(
///     "F1",
///     Behavior::new()
///         .read(input)
///         .execute(LoadModel::Constant(100))
///         .write(mid),
/// );
/// app.add_function(
///     "F2",
///     Behavior::new()
///         .read(mid)
///         .execute(LoadModel::Constant(50))
///         .write(output),
/// );
/// app.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Application {
    functions: Vec<Function>,
    relations: Vec<Relation>,
}

impl Application {
    /// Creates an empty application.
    pub fn new() -> Self {
        Application::default()
    }

    /// Adds an internal relation (producer and consumer are bound when
    /// functions referencing it are added).
    pub fn add_relation(&mut self, name: impl Into<String>, kind: RelationKind) -> RelationId {
        let id = RelationId(self.relations.len());
        self.relations.push(Relation {
            name: name.into(),
            kind,
            producer: None,
            consumer: None,
        });
        id
    }

    /// Adds an external-input relation: the environment produces, an
    /// application function consumes.
    pub fn add_input(&mut self, name: impl Into<String>, kind: RelationKind) -> RelationId {
        self.add_relation(name, kind)
    }

    /// Adds an external-output relation: an application function produces,
    /// the environment consumes.
    pub fn add_output(&mut self, name: impl Into<String>, kind: RelationKind) -> RelationId {
        self.add_relation(name, kind)
    }

    /// Adds a function with the default (forwarding) size model.
    pub fn add_function(&mut self, name: impl Into<String>, behavior: Behavior) -> FunctionId {
        self.add_function_with_size(name, behavior, SizeModel::Same)
    }

    /// Adds a function with an explicit size transformation.
    pub fn add_function_with_size(
        &mut self,
        name: impl Into<String>,
        behavior: Behavior,
        size_model: SizeModel,
    ) -> FunctionId {
        let id = FunctionId(self.functions.len());
        self.functions.push(Function {
            name: name.into(),
            behavior,
            size_model,
        });
        id
    }

    /// The functions, indexed by [`FunctionId`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The relations, indexed by [`RelationId`].
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// A function by id.
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.0]
    }

    /// A relation by id.
    pub fn relation(&self, id: RelationId) -> &Relation {
        &self.relations[id.0]
    }

    /// Relations with no internal producer (external inputs), in id order.
    pub fn external_inputs(&self) -> Vec<RelationId> {
        self.relations
            .iter()
            .enumerate()
            .filter(|(_, r)| r.producer.is_none() && r.consumer.is_some())
            .map(|(i, _)| RelationId(i))
            .collect()
    }

    /// Relations with no internal consumer (external outputs), in id order.
    pub fn external_outputs(&self) -> Vec<RelationId> {
        self.relations
            .iter()
            .enumerate()
            .filter(|(_, r)| r.consumer.is_none() && r.producer.is_some())
            .map(|(i, _)| RelationId(i))
            .collect()
    }

    /// Binds producers/consumers from behaviours and checks structural
    /// invariants: every relation has exactly one producer and one consumer
    /// side (internal function or environment), every referenced relation
    /// exists, and no function has an empty behaviour.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found as a [`ModelError`].
    pub fn validate(&mut self) -> Result<(), ModelError> {
        // Reset bindings so validate is idempotent.
        for r in &mut self.relations {
            r.producer = None;
            r.consumer = None;
        }
        for (fidx, function) in self.functions.iter().enumerate() {
            let fid = FunctionId(fidx);
            if function.behavior.is_empty() {
                return Err(ModelError::EmptyBehavior {
                    function: function.name.clone(),
                });
            }
            for stmt in function.behavior.stmts() {
                match stmt {
                    Stmt::Read(rel) => {
                        let relation = self.relations.get_mut(rel.0).ok_or(
                            ModelError::UnknownRelation {
                                relation: *rel,
                                function: function.name.clone(),
                            },
                        )?;
                        if let Some(existing) = relation.consumer {
                            if existing != fid {
                                return Err(ModelError::MultipleConsumers {
                                    relation: relation.name.clone(),
                                });
                            }
                        }
                        relation.consumer = Some(fid);
                    }
                    Stmt::Write(rel) => {
                        let relation = self.relations.get_mut(rel.0).ok_or(
                            ModelError::UnknownRelation {
                                relation: *rel,
                                function: function.name.clone(),
                            },
                        )?;
                        if let Some(existing) = relation.producer {
                            if existing != fid {
                                return Err(ModelError::MultipleProducers {
                                    relation: relation.name.clone(),
                                });
                            }
                        }
                        relation.producer = Some(fid);
                    }
                    Stmt::Execute(_) => {}
                }
            }
        }
        for relation in &self.relations {
            if relation.producer.is_none() && relation.consumer.is_none() {
                return Err(ModelError::DanglingRelation {
                    relation: relation.name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> (Application, RelationId, RelationId, RelationId) {
        let mut app = Application::new();
        let input = app.add_input("in", RelationKind::Rendezvous);
        let mid = app.add_relation("mid", RelationKind::Fifo(2));
        let output = app.add_output("out", RelationKind::Rendezvous);
        app.add_function(
            "F1",
            Behavior::new()
                .read(input)
                .execute(LoadModel::Constant(1))
                .write(mid),
        );
        app.add_function(
            "F2",
            Behavior::new()
                .read(mid)
                .execute(LoadModel::Constant(1))
                .write(output),
        );
        (app, input, mid, output)
    }

    #[test]
    fn validate_binds_endpoints() {
        let (mut app, input, mid, output) = pipeline();
        app.validate().unwrap();
        assert_eq!(app.relation(input).consumer, Some(FunctionId(0)));
        assert_eq!(app.relation(input).producer, None);
        assert_eq!(app.relation(mid).producer, Some(FunctionId(0)));
        assert_eq!(app.relation(mid).consumer, Some(FunctionId(1)));
        assert_eq!(app.relation(output).producer, Some(FunctionId(1)));
        assert_eq!(app.external_inputs(), vec![input]);
        assert_eq!(app.external_outputs(), vec![output]);
    }

    #[test]
    fn validate_is_idempotent() {
        let (mut app, ..) = pipeline();
        app.validate().unwrap();
        app.validate().unwrap();
        assert_eq!(app.external_inputs().len(), 1);
    }

    #[test]
    fn multiple_consumers_rejected() {
        let (mut app, input, ..) = pipeline();
        app.add_function("F3", Behavior::new().read(input));
        let err = app.validate().unwrap_err();
        assert!(matches!(err, ModelError::MultipleConsumers { .. }));
    }

    #[test]
    fn multiple_producers_rejected() {
        let (mut app, _, mid, _) = pipeline();
        app.add_function("F3", Behavior::new().write(mid));
        let err = app.validate().unwrap_err();
        assert!(matches!(err, ModelError::MultipleProducers { .. }));
    }

    #[test]
    fn empty_behavior_rejected() {
        let mut app = Application::new();
        app.add_function("F1", Behavior::new());
        assert!(matches!(
            app.validate().unwrap_err(),
            ModelError::EmptyBehavior { .. }
        ));
    }

    #[test]
    fn dangling_relation_rejected() {
        let mut app = Application::new();
        let _unused = app.add_relation("m", RelationKind::Rendezvous);
        app.add_function(
            "F1",
            Behavior::new().execute(LoadModel::Constant(1)),
        );
        assert!(matches!(
            app.validate().unwrap_err(),
            ModelError::DanglingRelation { .. }
        ));
    }

    #[test]
    fn execute_indices() {
        let b = Behavior::new()
            .read(RelationId(0))
            .execute(LoadModel::Constant(1))
            .write(RelationId(1))
            .execute(LoadModel::Constant(2));
        assert_eq!(b.execute_indices(), vec![1, 3]);
    }
}
