//! Workload models: computation loads and their mapping to durations.
//!
//! A workload model expresses "the computation and communication loads that
//! an application causes when executed" (paper Section II) without modeling
//! functionality. An [`Execute`](crate::Stmt::Execute) statement carries a
//! [`LoadModel`] producing an abstract operation count; the processing
//! resource's speed converts operations into simulated time, and the raw
//! operation count feeds the computational-complexity (GOPS) observation of
//! the paper's Fig. 6.
//!
//! All load evaluation is **deterministic in `(function, statement, k,
//! size)`** — the conventional event-driven model and the equivalent model
//! computed through the temporal dependency graph must observe *identical*
//! durations, otherwise the paper's exact-accuracy claim cannot be checked.
//! Randomized loads therefore derive from a counter-based hash of those
//! coordinates rather than from a stateful generator.

use evolve_des::Duration;

/// Deterministic 64-bit mix (SplitMix64 finalizer); counter-based so both
/// model variants sample identical values for the same coordinates.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Coordinates identifying one execute-statement instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LoadContext {
    /// Index of the executing function.
    pub function: usize,
    /// Statement index within the function's behaviour.
    pub stmt: usize,
    /// Iteration `k` of the function.
    pub k: u64,
    /// Size of the most recently read token in this iteration.
    pub size: u64,
}

/// A computation load in abstract operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadModel {
    /// A fixed operation count.
    Constant(u64),
    /// `base + per_unit * size`: load proportional to the data size, the
    /// paper's "execution durations … can depend on data size information".
    PerUnit {
        /// Load independent of the data size.
        base: u64,
        /// Additional load per size unit.
        per_unit: u64,
    },
    /// A uniformly distributed load in `min..=max`, drawn deterministically
    /// from `(seed, function, stmt, k)`.
    Uniform {
        /// Inclusive lower bound.
        min: u64,
        /// Inclusive upper bound.
        max: u64,
        /// Stream seed, so distinct models decorrelate.
        seed: u64,
    },
    /// Step table: the load of the first entry whose size bound is `>= size`
    /// (entries must be sorted by size); sizes beyond the last bound use the
    /// last entry.
    Table(Vec<(u64, u64)>),
    /// Replay of a captured per-iteration load trace: iteration `k` uses
    /// `samples[k % samples.len()]`, independent of data size. Lets models
    /// be driven by measured workloads instead of analytic ones.
    Trace(std::sync::Arc<Vec<u64>>),
    /// Conditionally active computation — the paper's "conditioning in the
    /// evolution of the application": with probability `num/den` (drawn
    /// deterministically per iteration) the inner load runs, otherwise the
    /// execute contributes zero operations and zero time. Because activity
    /// is a pure function of `(seed, k)`, the computed model evaluates the
    /// same condition without the simulator, exactly as the paper's
    /// Section III.C control statements.
    Gated {
        /// Activation numerator.
        num: u64,
        /// Activation denominator (must be nonzero).
        den: u64,
        /// Stream seed.
        seed: u64,
        /// The load performed when active.
        inner: std::sync::Arc<LoadModel>,
    },
}

impl LoadModel {
    /// Evaluates the operation count for one statement instance.
    ///
    /// # Panics
    ///
    /// Panics if a [`LoadModel::Table`] is empty or if a
    /// [`LoadModel::Uniform`] has `min > max`.
    pub fn ops(&self, ctx: LoadContext) -> u64 {
        match self {
            LoadModel::Constant(n) => *n,
            LoadModel::PerUnit { base, per_unit } => {
                base.saturating_add(per_unit.saturating_mul(ctx.size))
            }
            LoadModel::Uniform { min, max, seed } => {
                assert!(min <= max, "uniform load with min > max");
                let span = max - min + 1;
                let h = mix64(
                    seed ^ mix64(ctx.function as u64)
                        ^ mix64(ctx.stmt as u64).rotate_left(17)
                        ^ mix64(ctx.k).rotate_left(34),
                );
                min + h % span
            }
            LoadModel::Table(entries) => {
                assert!(!entries.is_empty(), "empty load table");
                entries
                    .iter()
                    .find(|(bound, _)| ctx.size <= *bound)
                    .or_else(|| entries.last())
                    .map(|(_, ops)| *ops)
                    .expect("table checked non-empty")
            }
            LoadModel::Trace(samples) => {
                assert!(!samples.is_empty(), "empty load trace");
                samples[(ctx.k % samples.len() as u64) as usize]
            }
            LoadModel::Gated {
                num,
                den,
                seed,
                inner,
            } => {
                assert!(*den > 0, "gated load with zero denominator");
                let h = mix64(seed ^ mix64(ctx.k).rotate_left(21));
                if h % den < *num {
                    inner.ops(ctx)
                } else {
                    0
                }
            }
        }
    }

    /// The period of this model in the iteration index `k`, if the model is
    /// (eventually) periodic in `k`: `ops` restricted to any fixed `size`
    /// satisfies `ops(k + q) == ops(k)` for the returned `q`. `None` means
    /// the load is a pseudo-random function of `k` with no short period.
    ///
    /// Size-only and constant models report `Some(1)`. This is the
    /// eligibility gate for periodic steady-state fast-forwarding: a
    /// detected state period `p` is only sound to extrapolate when every
    /// load's `k`-period divides `p` (checked via `p % q == 0`), otherwise
    /// operation counts would diverge from the skipped evaluations.
    pub fn k_period(&self) -> Option<u64> {
        match self {
            LoadModel::Constant(_) | LoadModel::PerUnit { .. } | LoadModel::Table(_) => Some(1),
            LoadModel::Uniform { min, max, .. } => (min == max).then_some(1),
            LoadModel::Trace(samples) => Some(samples.len().max(1) as u64),
            LoadModel::Gated {
                num, den, inner, ..
            } => {
                if *num == 0 {
                    Some(1) // never active: ops are identically zero
                } else if num >= den {
                    inner.k_period() // always active: inner decides
                } else {
                    None // genuinely random activation per k
                }
            }
        }
    }

    /// Convenience constructor for [`LoadModel::Gated`].
    pub fn gated(num: u64, den: u64, seed: u64, inner: LoadModel) -> Self {
        LoadModel::Gated {
            num,
            den,
            seed,
            inner: std::sync::Arc::new(inner),
        }
    }

    /// Convenience constructor for [`LoadModel::Trace`].
    pub fn from_trace(samples: Vec<u64>) -> Self {
        LoadModel::Trace(std::sync::Arc::new(samples))
    }
}

/// Converts an operation count to a duration on a resource of the given
/// speed (operations per tick), rounding up so nonzero work always takes
/// nonzero time.
///
/// # Panics
///
/// Panics if `speed_ops_per_tick` is zero.
pub fn duration_for(ops: u64, speed_ops_per_tick: u64) -> Duration {
    assert!(speed_ops_per_tick > 0, "resource speed must be nonzero");
    Duration::from_ticks(ops.div_ceil(speed_ops_per_tick))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(k: u64, size: u64) -> LoadContext {
        LoadContext {
            function: 1,
            stmt: 2,
            k,
            size,
        }
    }

    #[test]
    fn constant_and_per_unit() {
        assert_eq!(LoadModel::Constant(7).ops(ctx(0, 100)), 7);
        assert_eq!(
            LoadModel::PerUnit {
                base: 10,
                per_unit: 3
            }
            .ops(ctx(0, 4)),
            22
        );
    }

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        let m = LoadModel::Uniform {
            min: 5,
            max: 9,
            seed: 42,
        };
        for k in 0..100 {
            let a = m.ops(ctx(k, 0));
            let b = m.ops(ctx(k, 0));
            assert_eq!(a, b, "same coordinates, same draw");
            assert!((5..=9).contains(&a));
        }
        // Different k gives (almost surely) different draws somewhere.
        let distinct: std::collections::HashSet<u64> =
            (0..100).map(|k| m.ops(ctx(k, 0))).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn uniform_decorrelates_across_seeds_and_stmts() {
        let a = LoadModel::Uniform {
            min: 0,
            max: 1_000_000,
            seed: 1,
        };
        let b = LoadModel::Uniform {
            min: 0,
            max: 1_000_000,
            seed: 2,
        };
        let same: usize = (0..200)
            .filter(|&k| a.ops(ctx(k, 0)) == b.ops(ctx(k, 0)))
            .count();
        assert!(same < 5, "seeds should decorrelate, {same} collisions");
    }

    #[test]
    fn table_lookup() {
        let m = LoadModel::Table(vec![(10, 100), (20, 200), (30, 300)]);
        assert_eq!(m.ops(ctx(0, 5)), 100);
        assert_eq!(m.ops(ctx(0, 10)), 100);
        assert_eq!(m.ops(ctx(0, 11)), 200);
        assert_eq!(m.ops(ctx(0, 99)), 300, "beyond last bound uses last entry");
    }

    #[test]
    fn duration_rounds_up() {
        assert_eq!(duration_for(10, 3), Duration::from_ticks(4));
        assert_eq!(duration_for(9, 3), Duration::from_ticks(3));
        assert_eq!(duration_for(0, 3), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "speed must be nonzero")]
    fn zero_speed_rejected() {
        let _ = duration_for(1, 0);
    }

    #[test]
    #[should_panic(expected = "empty load table")]
    fn empty_table_rejected() {
        let _ = LoadModel::Table(vec![]).ops(ctx(0, 0));
    }

    #[test]
    fn trace_replays_cyclically() {
        let m = LoadModel::from_trace(vec![5, 9, 1]);
        assert_eq!(m.ops(ctx(0, 100)), 5);
        assert_eq!(m.ops(ctx(1, 0)), 9);
        assert_eq!(m.ops(ctx(2, 0)), 1);
        assert_eq!(m.ops(ctx(3, 0)), 5, "wraps around");
    }

    #[test]
    #[should_panic(expected = "empty load trace")]
    fn empty_trace_rejected() {
        let _ = LoadModel::Trace(std::sync::Arc::new(vec![])).ops(ctx(0, 0));
    }

    #[test]
    fn gated_load_is_deterministic_and_sometimes_zero() {
        let m = LoadModel::gated(1, 3, 7, LoadModel::Constant(100));
        let draws: Vec<u64> = (0..300).map(|k| m.ops(ctx(k, 0))).collect();
        let again: Vec<u64> = (0..300).map(|k| m.ops(ctx(k, 0))).collect();
        assert_eq!(draws, again);
        let active = draws.iter().filter(|&&d| d == 100).count();
        let idle = draws.iter().filter(|&&d| d == 0).count();
        assert_eq!(active + idle, 300, "only 0 or the inner load");
        // Roughly a third active.
        assert!((60..=140).contains(&active), "{active} active of 300");
    }

    #[test]
    fn gated_always_and_never() {
        let always = LoadModel::gated(1, 1, 0, LoadModel::Constant(9));
        let never = LoadModel::gated(0, 5, 0, LoadModel::Constant(9));
        for k in 0..50 {
            assert_eq!(always.ops(ctx(k, 0)), 9);
            assert_eq!(never.ops(ctx(k, 0)), 0);
        }
    }
}
