//! Typed identifiers for model entities.
//!
//! Newtypes keep function, relation, and resource indices statically
//! distinct (a `FunctionId` can never be used where a `ResourceId` is
//! expected), per the workspace's type-safety conventions.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub(crate) usize);

        impl $name {
            /// The raw index into the owning collection.
            pub fn index(self) -> usize {
                self.0
            }

            /// Builds an identifier from a raw index.
            ///
            /// Prefer the ids returned by the builder methods; this exists
            /// for table-driven test and harness code.
            pub fn from_index(index: usize) -> Self {
                $name(index)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of an application function.
    FunctionId,
    "F"
);
id_type!(
    /// Identifier of a relation (communication channel) between functions.
    RelationId,
    "M"
);
id_type!(
    /// Identifier of a platform processing resource.
    ResourceId,
    "P"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(FunctionId(1).to_string(), "F1");
        assert_eq!(RelationId(2).to_string(), "M2");
        assert_eq!(ResourceId(0).to_string(), "P0");
    }

    #[test]
    fn round_trip() {
        assert_eq!(FunctionId::from_index(4).index(), 4);
    }
}
