//! Trace export: VCD waveforms and CSV series.
//!
//! Performance-model results are consumed by the same tooling as RTL
//! traces: [`write_vcd`] emits resource-activity waveforms (one busy bit
//! and one cumulative-operations counter per resource) viewable in GTKWave
//! and friends, and the CSV helpers serialize usage series and exchange
//! instants for plotting.

use std::fmt::Write as _;

use evolve_des::Time;

use crate::ids::ResourceId;
use crate::observe::{ExecRecord, ResourceTrace, UsageSeries};
use crate::platform::Platform;

/// Renders resource activity as a Value Change Dump document.
///
/// Per resource: a 1-bit `busy` wire (from the merged busy intervals) and a
/// 64-bit cumulative `ops` counter (incremented at each execution end).
/// The timescale is 1 ns, matching the workspace's tick convention.
///
/// # Examples
///
/// ```
/// use evolve_model::{write_vcd, ExecRecord, FunctionId, Platform, ResourceId, Concurrency};
/// use evolve_des::Time;
///
/// let mut platform = Platform::new();
/// platform.add_resource("dsp", Concurrency::Sequential, 1);
/// let records = vec![ExecRecord {
///     resource: ResourceId::from_index(0),
///     function: FunctionId::from_index(0),
///     stmt: 1,
///     k: 0,
///     start: Time::from_ticks(10),
///     end: Time::from_ticks(30),
///     ops: 20,
/// }];
/// let vcd = write_vcd(&records, &platform);
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("#10"));
/// ```
pub fn write_vcd(records: &[ExecRecord], platform: &Platform) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date evolve performance trace $end");
    let _ = writeln!(out, "$version evolve 0.1 $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module platform $end");
    // Identifier codes: '!' onwards, two per resource.
    let busy_code = |r: usize| char::from(b'!' + (2 * r) as u8);
    let ops_code = |r: usize| char::from(b'!' + (2 * r + 1) as u8);
    for (ridx, resource) in platform.resources().iter().enumerate() {
        let _ = writeln!(
            out,
            "$var wire 1 {} {}_busy $end",
            busy_code(ridx),
            sanitize(&resource.name)
        );
        let _ = writeln!(
            out,
            "$var integer 64 {} {}_ops $end",
            ops_code(ridx),
            sanitize(&resource.name)
        );
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values.
    let _ = writeln!(out, "#0");
    for ridx in 0..platform.len() {
        let _ = writeln!(out, "0{}", busy_code(ridx));
        let _ = writeln!(out, "b0 {}", ops_code(ridx));
    }

    // Change events: busy edges from merged intervals, ops at exec ends.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    enum Change {
        Busy(bool),
        Ops(u64),
    }
    let mut changes: Vec<(Time, usize, Change)> = Vec::new();
    for ridx in 0..platform.len() {
        let rid = ResourceId::from_index(ridx);
        let trace = ResourceTrace::from_records(records, rid);
        for (s, e) in &trace.intervals {
            changes.push((*s, ridx, Change::Busy(true)));
            changes.push((*e, ridx, Change::Busy(false)));
        }
        let mut cumulative = 0u64;
        let mut ends: Vec<(Time, u64)> = records
            .iter()
            .filter(|r| r.resource == rid)
            .map(|r| (r.end, r.ops))
            .collect();
        ends.sort_unstable();
        for (t, ops) in ends {
            cumulative += ops;
            changes.push((t, ridx, Change::Ops(cumulative)));
        }
    }
    changes.sort_by_key(|a| (a.0, a.1));
    let mut current_time = None;
    for (t, ridx, change) in changes {
        if current_time != Some(t) {
            let _ = writeln!(out, "#{}", t.ticks());
            current_time = Some(t);
        }
        match change {
            Change::Busy(b) => {
                let _ = writeln!(out, "{}{}", u8::from(b), busy_code(ridx));
            }
            Change::Ops(v) => {
                let _ = writeln!(out, "b{v:b} {}", ops_code(ridx));
            }
        }
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

/// Serializes a usage series as `time_ns,ops_per_ns` CSV rows with header.
pub fn usage_series_to_csv(series: &UsageSeries) -> String {
    let mut out = String::from("time_ns,gops\n");
    for (t, v) in series.points() {
        let _ = writeln!(out, "{},{v:.6}", t.ticks());
    }
    out
}

/// Serializes exchange instants as `k,time_ns` CSV rows with header.
pub fn instants_to_csv(instants: &[Time]) -> String {
    let mut out = String::from("k,time_ns\n");
    for (k, t) in instants.iter().enumerate() {
        let _ = writeln!(out, "{k},{}", t.ticks());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FunctionId;
    use crate::platform::Concurrency;

    fn sample_setup() -> (Vec<ExecRecord>, Platform) {
        let mut platform = Platform::new();
        platform.add_resource("P1", Concurrency::Sequential, 1);
        platform.add_resource("hw/2", Concurrency::Unlimited, 4);
        let rec = |res: usize, s: u64, e: u64, ops: u64| ExecRecord {
            resource: ResourceId::from_index(res),
            function: FunctionId::from_index(0),
            stmt: 1,
            k: 0,
            start: Time::from_ticks(s),
            end: Time::from_ticks(e),
            ops,
        };
        (
            vec![rec(0, 0, 10, 100), rec(0, 10, 25, 50), rec(1, 5, 8, 30)],
            platform,
        )
    }

    #[test]
    fn vcd_structure() {
        let (records, platform) = sample_setup();
        let vcd = write_vcd(&records, &platform);
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$var wire 1 ! P1_busy $end"));
        assert!(vcd.contains("$var integer 64 \" P1_ops $end"));
        // Special characters sanitized.
        assert!(vcd.contains("hw_2_busy"));
        // Busy intervals of P1 merge 0..25: one rise at 0, one fall at 25.
        assert!(vcd.contains("#0\n"));
        assert!(vcd.contains("#25"));
        // Cumulative ops: 100 at t=10, 150 at t=25 (binary).
        assert!(vcd.contains(&format!("b{:b} \"", 100)));
        assert!(vcd.contains(&format!("b{:b} \"", 150)));
    }

    #[test]
    fn vcd_busy_edges_ordered() {
        let (records, platform) = sample_setup();
        let vcd = write_vcd(&records, &platform);
        let rise = vcd.find("1!").expect("rise");
        let fall = vcd.rfind("0!").expect("fall");
        assert!(rise < fall);
    }

    #[test]
    fn csv_outputs() {
        let (records, _) = sample_setup();
        let series = UsageSeries::from_records(&records, ResourceId::from_index(0), 10);
        let csv = usage_series_to_csv(&series);
        assert!(csv.starts_with("time_ns,gops\n"));
        assert_eq!(csv.lines().count(), 1 + series.bins.len());

        let instants = vec![Time::from_ticks(5), Time::from_ticks(17)];
        let csv = instants_to_csv(&instants);
        assert_eq!(csv, "k,time_ns\n0,5\n1,17\n");
    }
}
