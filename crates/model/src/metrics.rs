//! Performance metrics derived from run reports: latency distributions,
//! throughput, and queue occupancy.
//!
//! These are the numbers a performance-evaluation campaign actually reads
//! off a run — computed from the exchange-instant logs, so they are
//! identical whether the logs came from the conventional simulation or
//! from the equivalent model's computed observation.

use evolve_des::Time;

use crate::elaborate::RunReport;
use crate::ids::RelationId;

/// Summary statistics of a sample of durations (in ticks).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DurationStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl DurationStats {
    /// Computes statistics from raw samples. Returns `None` for an empty
    /// sample.
    pub fn from_samples(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let pct = |p: f64| samples[(((count - 1) as f64) * p).round() as usize];
        Some(DurationStats {
            count,
            min: samples[0],
            max: samples[count - 1],
            mean: samples.iter().sum::<u64>() as f64 / count as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        })
    }
}

/// Token-wise latency from relation `from` to relation `to`: the duration
/// between the `k`-th write on each (the k-th token's traversal time).
///
/// Returns `None` when either log is empty; tokens beyond the shorter log
/// are ignored.
pub fn latency_between(report: &RunReport, from: RelationId, to: RelationId) -> Option<DurationStats> {
    let a = report.instants(from);
    let b = report.instants(to);
    let samples: Vec<u64> = a
        .iter()
        .zip(b)
        .map(|(s, e)| e.ticks().saturating_sub(s.ticks()))
        .collect();
    DurationStats::from_samples(samples)
}

/// Mean throughput on a relation over the run, in tokens per second
/// (1 tick = 1 ns).
///
/// Returns `None` for fewer than two exchanges.
pub fn throughput(report: &RunReport, relation: RelationId) -> Option<f64> {
    let log = report.instants(relation);
    if log.len() < 2 {
        return None;
    }
    let span = log.last()?.ticks().saturating_sub(log.first()?.ticks());
    if span == 0 {
        return None;
    }
    Some((log.len() - 1) as f64 / (span as f64 * 1e-9))
}

/// One step of a queue-occupancy staircase: from `at` (inclusive) the
/// queue holds `level` tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OccupancyStep {
    /// Instant of the change.
    pub at: Time,
    /// Occupancy from this instant on.
    pub level: i64,
}

/// Queue occupancy over time of a (FIFO) relation, reconstructed from its
/// write and read instants: +1 at each write completion, −1 at each read
/// completion. For rendezvous relations the occupancy is identically 0
/// (write and read coincide).
pub fn occupancy(report: &RunReport, relation: RelationId) -> Vec<OccupancyStep> {
    let log = &report.relation_logs[relation.index()];
    let mut events: Vec<(Time, i64)> = log
        .write_instants
        .iter()
        .map(|t| (*t, 1i64))
        .chain(log.read_instants.iter().map(|t| (*t, -1i64)))
        .collect();
    // Reads sort before writes at equal instants so a same-instant
    // hand-through never shows spurious occupancy.
    events.sort_by_key(|(t, delta)| (*t, *delta));
    let mut steps = Vec::new();
    let mut level = 0i64;
    for (at, delta) in events {
        level += delta;
        match steps.last_mut() {
            Some(OccupancyStep { at: last, level: l }) if *last == at => *l = level,
            _ => steps.push(OccupancyStep { at, level }),
        }
    }
    steps
}

/// The maximum queue occupancy ever reached on a relation.
pub fn peak_occupancy(report: &RunReport, relation: RelationId) -> i64 {
    occupancy(report, relation)
        .iter()
        .map(|s| s.level)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evolve_des::ChannelLog;
    use evolve_des::KernelStats;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    fn report(logs: Vec<ChannelLog>) -> RunReport {
        RunReport {
            end_time: t(1_000),
            stats: KernelStats::default(),
            relation_logs: logs,
            exec_records: Vec::new(),
            wall: std::time::Duration::ZERO,
        }
    }

    #[test]
    fn stats_percentiles() {
        let s = DurationStats::from_samples((1..=100).collect()).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 51); // nearest-rank: index round(99 × 0.5) = 50
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(DurationStats::from_samples(vec![]), None);
    }

    #[test]
    fn latency_pairs_by_token() {
        let r = report(vec![
            ChannelLog {
                write_instants: vec![t(0), t(10), t(20)],
                read_instants: vec![],
            },
            ChannelLog {
                write_instants: vec![t(5), t(25), t(30)],
                read_instants: vec![],
            },
        ]);
        let s = latency_between(&r, RelationId::from_index(0), RelationId::from_index(1)).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 15);
    }

    #[test]
    fn throughput_per_second() {
        // 11 tokens over 1000 ns → 10 inter-arrivals / 1 µs = 1e7 tokens/s.
        let r = report(vec![ChannelLog {
            write_instants: (0..11).map(|k| t(k * 100)).collect(),
            read_instants: vec![],
        }]);
        let thr = throughput(&r, RelationId::from_index(0)).unwrap();
        assert!((thr - 1e7).abs() / 1e7 < 1e-9);
        let empty = report(vec![ChannelLog::default()]);
        assert_eq!(throughput(&empty, RelationId::from_index(0)), None);
    }

    #[test]
    fn occupancy_staircase() {
        // Writes at 0, 5, 10; reads at 7, 12, 12.
        let r = report(vec![ChannelLog {
            write_instants: vec![t(0), t(5), t(10)],
            read_instants: vec![t(7), t(12), t(12)],
        }]);
        let steps = occupancy(&r, RelationId::from_index(0));
        assert_eq!(
            steps,
            vec![
                OccupancyStep { at: t(0), level: 1 },
                OccupancyStep { at: t(5), level: 2 },
                OccupancyStep { at: t(7), level: 1 },
                OccupancyStep { at: t(10), level: 2 },
                OccupancyStep { at: t(12), level: 0 },
            ]
        );
        assert_eq!(peak_occupancy(&r, RelationId::from_index(0)), 2);
    }

    #[test]
    fn rendezvous_occupancy_is_zero() {
        let r = report(vec![ChannelLog {
            write_instants: vec![t(3), t(9)],
            read_instants: vec![t(3), t(9)],
        }]);
        assert_eq!(peak_occupancy(&r, RelationId::from_index(0)), 0);
    }
}
