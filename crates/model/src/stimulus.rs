//! Environment stimuli: token arrival schedules for external inputs.
//!
//! The paper's experiments drive architectures with "20000 data produced
//! through relation M1 with varying data size associated" and, in the case
//! study, "an environment that periodically produces data frames with
//! varying parameters". A [`Stimulus`] is that schedule: the instant each
//! token is *offered* (the paper's `u(k)` when the model is idle) and its
//! size.

use evolve_des::{Duration, Time};

/// One scheduled token offer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Earliest instant the environment offers the token.
    pub at: Time,
    /// Token size.
    pub size: u64,
}

/// A finite arrival schedule for one external input relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stimulus {
    arrivals: Vec<Arrival>,
}

impl Stimulus {
    /// Creates a stimulus from explicit arrivals.
    ///
    /// # Panics
    ///
    /// Panics if arrival instants are not non-decreasing.
    pub fn new(arrivals: Vec<Arrival>) -> Self {
        assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "stimulus arrivals must be sorted by time"
        );
        Stimulus { arrivals }
    }

    /// A periodic stimulus of `count` tokens spaced by `period`, with sizes
    /// produced by `size_of(k)`.
    pub fn periodic(count: u64, period: Duration, mut size_of: impl FnMut(u64) -> u64) -> Self {
        let arrivals = (0..count)
            .map(|k| Arrival {
                at: Time::ZERO + period.saturating_mul(k),
                size: size_of(k),
            })
            .collect();
        Stimulus { arrivals }
    }

    /// A back-to-back stimulus: every token offered at time zero (the model
    /// is then fully throughput-bound, the Table I operating point).
    pub fn saturating(count: u64, mut size_of: impl FnMut(u64) -> u64) -> Self {
        Stimulus {
            arrivals: (0..count)
                .map(|k| Arrival {
                    at: Time::ZERO,
                    size: size_of(k),
                })
                .collect(),
        }
    }

    /// Parses a stimulus from CSV rows of `time_ns,size` (a header line is
    /// skipped if present) — the inverse of the export helpers, so captured
    /// or externally generated arrival traces can drive models.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for malformed rows or
    /// non-monotone times.
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut arrivals = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (lineno == 0 && line.chars().any(|c| c.is_alphabetic())) {
                continue;
            }
            let mut parts = line.split(',');
            let (t, size) = (parts.next(), parts.next());
            let (Some(t), Some(size)) = (t, size) else {
                return Err(format!("line {}: expected `time_ns,size`", lineno + 1));
            };
            let at: u64 = t
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad time: {e}", lineno + 1))?;
            let size: u64 = size
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad size: {e}", lineno + 1))?;
            if let Some(prev) = arrivals.last() {
                let prev: &Arrival = prev;
                if prev.at.ticks() > at {
                    return Err(format!("line {}: times must be non-decreasing", lineno + 1));
                }
            }
            arrivals.push(Arrival {
                at: Time::from_ticks(at),
                size,
            });
        }
        Ok(Stimulus { arrivals })
    }

    /// The scheduled arrivals in order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of scheduled tokens.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Returns `true` when no tokens are scheduled.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// Deterministic size sequence oscillating in `min..=max` — a convenient
/// "varying data size" source that both model variants can reproduce.
pub fn varying_sizes(min: u64, max: u64, seed: u64) -> impl FnMut(u64) -> u64 {
    assert!(min <= max, "size range must be non-empty");
    let span = max - min + 1;
    move |k| {
        // SplitMix64-style mix of (seed, k); identical everywhere.
        let mut z = seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        min + (z ^ (z >> 31)) % span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_schedule() {
        let s = Stimulus::periodic(3, Duration::from_ticks(10), |k| 100 + k);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.arrivals()[2],
            Arrival {
                at: Time::from_ticks(20),
                size: 102
            }
        );
    }

    #[test]
    fn saturating_schedule_all_at_zero() {
        let s = Stimulus::saturating(4, |_| 1);
        assert!(s.arrivals().iter().all(|a| a.at == Time::ZERO));
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_rejected() {
        let _ = Stimulus::new(vec![
            Arrival {
                at: Time::from_ticks(5),
                size: 1,
            },
            Arrival {
                at: Time::from_ticks(2),
                size: 1,
            },
        ]);
    }

    #[test]
    fn csv_round_trip() {
        let s = Stimulus::from_csv("time_ns,size\n0,10\n5,20\n\n5,30\n").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.arrivals()[2].size, 30);
        assert!(Stimulus::from_csv("10,1\n5,1").is_err(), "non-monotone");
        // First lines with letters are headers; later malformed rows fail.
        assert!(Stimulus::from_csv("0,1\nabc,1\n").is_err());
        assert!(Stimulus::from_csv("1\n").is_err());
        assert!(Stimulus::from_csv("").unwrap().is_empty());
    }

    #[test]
    fn varying_sizes_deterministic_in_range() {
        let mut a = varying_sizes(10, 20, 7);
        let mut b = varying_sizes(10, 20, 7);
        for k in 0..50 {
            let v = a(k);
            assert_eq!(v, b(k));
            assert!((10..=20).contains(&v));
        }
    }
}
