//! Data tokens exchanged through relations.
//!
//! Performance models do not carry functional data — a token records only
//! what influences timing: its **size** (the paper's "varying data size
//! associated" with each exchange) and the iteration index it belongs to.

/// A data token: the payload type carried by every model channel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Token {
    /// Abstract data size (e.g. bytes or samples); drives data-dependent
    /// execution durations.
    pub size: u64,
    /// Iteration index `k` of the producing source, for diagnostics.
    pub k: u64,
}

impl Token {
    /// Creates a token of the given size for iteration `k`.
    pub fn new(size: u64, k: u64) -> Self {
        Token { size, k }
    }
}

impl core::fmt::Display for Token {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "token(k={}, size={})", self.k, self.size)
    }
}

/// How a function transforms the size of the data it forwards.
///
/// The interpreter applies the model to the size of the most recent token
/// read in the current iteration to obtain the size of tokens it writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SizeModel {
    /// Output size equals the last input size (pure forwarding).
    #[default]
    Same,
    /// Output size is fixed.
    Constant(u64),
    /// Output size is `input * numerator / denominator` (e.g. a decoder
    /// expanding or a compressor shrinking data).
    Scaled {
        /// Multiplier applied to the input size.
        numerator: u64,
        /// Divisor applied after multiplication (must be nonzero).
        denominator: u64,
    },
}

impl SizeModel {
    /// The output size for a given input size.
    ///
    /// # Panics
    ///
    /// Panics if a [`SizeModel::Scaled`] has a zero denominator.
    pub fn apply(self, input: u64) -> u64 {
        match self {
            SizeModel::Same => input,
            SizeModel::Constant(n) => n,
            SizeModel::Scaled {
                numerator,
                denominator,
            } => {
                assert!(denominator != 0, "scaled size model with zero denominator");
                input.saturating_mul(numerator) / denominator
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_models() {
        assert_eq!(SizeModel::Same.apply(10), 10);
        assert_eq!(SizeModel::Constant(3).apply(10), 3);
        assert_eq!(
            SizeModel::Scaled {
                numerator: 3,
                denominator: 2
            }
            .apply(10),
            15
        );
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_rejected() {
        let _ = SizeModel::Scaled {
            numerator: 1,
            denominator: 0,
        }
        .apply(1);
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::new(5, 2).to_string(), "token(k=2, size=5)");
    }
}
