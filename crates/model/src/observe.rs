//! Observation of platform resource usage.
//!
//! The paper's Fig. 2(b) plots the interval during which each processing
//! resource is active, and Fig. 6(b)(c) the "computational complexity per
//! time unit (GOPS)" of each resource. Both are derived from the execution
//! records collected while a model runs — by the simulator for the
//! conventional model, or replayed from computed intermediate instants (over
//! the *observation time* axis, without the simulator) for the equivalent
//! model. The record format is shared so the two can be compared bit for
//! bit.

use evolve_des::Time;

use crate::ids::{FunctionId, ResourceId};

/// One completed execution on a resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecRecord {
    /// The resource that served the execution.
    pub resource: ResourceId,
    /// The executing function.
    pub function: FunctionId,
    /// Statement index of the execute within the function's behaviour.
    pub stmt: usize,
    /// Iteration `k` of the function.
    pub k: u64,
    /// Start instant.
    pub start: Time,
    /// End instant (`start + duration`).
    pub end: Time,
    /// Abstract operations performed (drives the GOPS observation).
    pub ops: u64,
}

/// Busy intervals of one resource: merged, non-overlapping, sorted.
///
/// This is the solid line of the paper's Fig. 2(b).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResourceTrace {
    /// Merged `[start, end)` busy intervals.
    pub intervals: Vec<(Time, Time)>,
}

impl ResourceTrace {
    /// Builds the busy-interval trace of `resource` from execution records
    /// (in any order).
    pub fn from_records(records: &[ExecRecord], resource: ResourceId) -> Self {
        let mut spans: Vec<(Time, Time)> = records
            .iter()
            .filter(|r| r.resource == resource && r.start < r.end)
            .map(|r| (r.start, r.end))
            .collect();
        spans.sort_unstable();
        let mut intervals: Vec<(Time, Time)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            match intervals.last_mut() {
                Some((_, last_end)) if s <= *last_end => {
                    if e > *last_end {
                        *last_end = e;
                    }
                }
                _ => intervals.push((s, e)),
            }
        }
        ResourceTrace { intervals }
    }

    /// Total busy ticks.
    pub fn busy_ticks(&self) -> u64 {
        self.intervals
            .iter()
            .map(|(s, e)| e.ticks() - s.ticks())
            .sum()
    }

    /// Utilization over `[0, horizon)`; `0.0` at a zero horizon (an empty
    /// window has no busy time, not an undefined ratio).
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        let busy: u64 = self
            .intervals
            .iter()
            .map(|(s, e)| {
                let e = (*e).min(horizon);
                if *s >= e {
                    0
                } else {
                    e.ticks() - s.ticks()
                }
            })
            .sum();
        busy as f64 / horizon.ticks() as f64
    }

    /// Returns `true` when the resource is busy at `t`.
    pub fn is_busy_at(&self, t: Time) -> bool {
        self.intervals.iter().any(|(s, e)| *s <= t && t < *e)
    }
}

/// Computational complexity per time unit — the paper's Fig. 6(b)(c) series.
///
/// Operations of each execution are attributed uniformly over its busy
/// interval, then integrated per fixed-width bin. With the 1 tick = 1 ns
/// convention the value is directly giga-operations per second (GOPS).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UsageSeries {
    /// Width of each bin in ticks.
    pub bin_ticks: u64,
    /// Mean ops/tick in each bin, starting at time zero.
    pub bins: Vec<f64>,
}

impl UsageSeries {
    /// Builds the usage series of `resource` with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_ticks` is zero.
    pub fn from_records(records: &[ExecRecord], resource: ResourceId, bin_ticks: u64) -> Self {
        assert!(bin_ticks > 0, "bin width must be nonzero");
        // Zero-width records carry no ops and must not stretch the series:
        // a record ending exactly on a bin boundary ends the series at
        // that boundary (its last touched bin is `(end − 1) / bin_ticks`),
        // so the horizon only counts records with actual width.
        let horizon = records
            .iter()
            .filter(|r| r.resource == resource && r.start < r.end)
            .map(|r| r.end.ticks())
            .max()
            .unwrap_or(0);
        let nbins = horizon.div_ceil(bin_ticks) as usize;
        let mut bins = vec![0.0f64; nbins];
        for r in records.iter().filter(|r| r.resource == resource) {
            let (s, e) = (r.start.ticks(), r.end.ticks());
            if e <= s {
                continue;
            }
            let rate = r.ops as f64 / (e - s) as f64; // ops per tick while busy
            let first = (s / bin_ticks) as usize;
            let last = ((e - 1) / bin_ticks) as usize;
            for (b, bin) in bins.iter_mut().enumerate().take(last + 1).skip(first) {
                let bin_start = b as u64 * bin_ticks;
                let bin_end = bin_start + bin_ticks;
                let overlap = e.min(bin_end).saturating_sub(s.max(bin_start));
                *bin += rate * overlap as f64 / bin_ticks as f64;
            }
        }
        UsageSeries { bin_ticks, bins }
    }

    /// `(bin start, mean ops/tick)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (Time, f64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, v)| (Time::from_ticks(i as u64 * self.bin_ticks), *v))
    }

    /// The peak bin value (ops/tick).
    pub fn peak(&self) -> f64 {
        self.bins.iter().copied().fold(0.0, f64::max)
    }

    /// Total operations accounted for (integral of the series).
    pub fn total_ops(&self) -> f64 {
        self.bins.iter().sum::<f64>() * self.bin_ticks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(resource: usize, start: u64, end: u64, ops: u64) -> ExecRecord {
        ExecRecord {
            resource: ResourceId::from_index(resource),
            function: FunctionId::from_index(0),
            stmt: 0,
            k: 0,
            start: Time::from_ticks(start),
            end: Time::from_ticks(end),
            ops,
        }
    }

    #[test]
    fn intervals_merge_overlaps() {
        let records = [rec(0, 0, 10, 1), rec(0, 5, 15, 1), rec(0, 20, 30, 1)];
        let trace = ResourceTrace::from_records(&records, ResourceId::from_index(0));
        assert_eq!(
            trace.intervals,
            vec![
                (Time::ZERO, Time::from_ticks(15)),
                (Time::from_ticks(20), Time::from_ticks(30))
            ]
        );
        assert_eq!(trace.busy_ticks(), 25);
        assert!(trace.is_busy_at(Time::from_ticks(7)));
        assert!(!trace.is_busy_at(Time::from_ticks(17)));
    }

    #[test]
    fn other_resources_filtered_out() {
        let records = [rec(0, 0, 10, 1), rec(1, 0, 100, 1)];
        let trace = ResourceTrace::from_records(&records, ResourceId::from_index(0));
        assert_eq!(trace.busy_ticks(), 10);
    }

    #[test]
    fn utilization_clamps_to_horizon() {
        let records = [rec(0, 0, 50, 1)];
        let trace = ResourceTrace::from_records(&records, ResourceId::from_index(0));
        assert!((trace.utilization(Time::from_ticks(100)) - 0.5).abs() < 1e-12);
        assert!((trace.utilization(Time::from_ticks(25)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn usage_series_distributes_ops() {
        // 100 ops over [0, 10): 10 ops/tick in the first bin of width 10.
        let records = [rec(0, 0, 10, 100)];
        let s = UsageSeries::from_records(&records, ResourceId::from_index(0), 10);
        assert_eq!(s.bins.len(), 1);
        assert!((s.bins[0] - 10.0).abs() < 1e-12);
        assert!((s.total_ops() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn usage_series_splits_across_bins() {
        // 100 ops over [5, 15): bins of 10 → 50 ops in each bin → 5 ops/tick.
        let records = [rec(0, 5, 15, 100)];
        let s = UsageSeries::from_records(&records, ResourceId::from_index(0), 10);
        assert_eq!(s.bins.len(), 2);
        assert!((s.bins[0] - 5.0).abs() < 1e-12);
        assert!((s.bins[1] - 5.0).abs() < 1e-12);
        assert!((s.peak() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_executions_add_up() {
        let records = [rec(0, 0, 10, 100), rec(0, 0, 10, 300)];
        let s = UsageSeries::from_records(&records, ResourceId::from_index(0), 10);
        assert!((s.bins[0] - 40.0).abs() < 1e-12);
    }

    #[test]
    fn record_ending_on_bin_boundary_stays_in_its_bin() {
        // [0, 10) with bins of 10 ends exactly on the first bin boundary:
        // one bin, all ops in it, none spilling into a phantom second bin.
        let records = [rec(0, 0, 10, 100)];
        let s = UsageSeries::from_records(&records, ResourceId::from_index(0), 10);
        assert_eq!(s.bins.len(), 1);
        assert!((s.bins[0] - 10.0).abs() < 1e-12);
        // Same with the record in a later bin: [10, 20) → exactly 2 bins.
        let records = [rec(0, 10, 20, 100)];
        let s = UsageSeries::from_records(&records, ResourceId::from_index(0), 10);
        assert_eq!(s.bins.len(), 2);
        assert_eq!(s.bins[0], 0.0);
        assert!((s.bins[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_width_records_do_not_stretch_the_series() {
        // A zero-width record at t=100 contributes nothing and must not
        // manufacture ten empty bins.
        let records = [rec(0, 0, 10, 50), rec(0, 100, 100, 7)];
        let s = UsageSeries::from_records(&records, ResourceId::from_index(0), 10);
        assert_eq!(s.bins.len(), 1);
        assert!((s.total_ops() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_zero_horizon_is_zero() {
        let records = [rec(0, 0, 50, 1)];
        let trace = ResourceTrace::from_records(&records, ResourceId::from_index(0));
        assert_eq!(trace.utilization(Time::ZERO), 0.0);
        let empty = ResourceTrace::default();
        assert_eq!(empty.utilization(Time::ZERO), 0.0);
    }

    #[test]
    fn empty_records() {
        let s = UsageSeries::from_records(&[], ResourceId::from_index(0), 10);
        assert!(s.bins.is_empty());
        assert_eq!(s.peak(), 0.0);
        let t = ResourceTrace::from_records(&[], ResourceId::from_index(0));
        assert_eq!(t.busy_ticks(), 0);
    }
}
