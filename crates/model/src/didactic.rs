//! The paper's didactic example (Fig. 1) and its chained variants.
//!
//! Five functions (`F0` is the environment source), two processing
//! resources:
//!
//! ```text
//! F1: while(1){ read(M1); execute(Ti1); write(M2); execute(Tj1); write(M3); }
//! F2: while(1){ read(M2); execute(Ti3); read(M4); execute(Tj3); write(M5); }
//! F3: while(1){ read(M3); execute(Ti2); write(M4); }
//! F4: while(1){ read(M5); execute(Ti4); write(M6); }
//! ```
//!
//! `F1`, `F2` are allocated to `P1` (sequential, one function at a time);
//! `F3`, `F4` to `P2` (dedicated hardware, fully concurrent). All relations
//! use the rendezvous protocol. `M1` is the external input fed by the
//! environment (`u(k)`), `M6` the external output (`y(k)`).
//!
//! [`chained`] concatenates `stages` copies of this pattern — stage `j`'s
//! `M6` is stage `j+1`'s `M1` — reproducing the four architecture models of
//! the paper's Table I (each extra stage adds internal relations whose
//! events the equivalent model saves).

use crate::app::{Application, Behavior, RelationKind};
use crate::ids::RelationId;
use crate::mapping::{Architecture, Mapping};
use crate::platform::{Concurrency, Platform};
use crate::workload::LoadModel;
use crate::ModelError;

/// Load parameters of one didactic stage.
///
/// Each `execute` is `base + per_unit × size` operations, matching the
/// paper's data-size-dependent execution durations. Resources run at
/// 1 op/tick, so operations are ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Load of `F1`'s first execute (`Ti1`).
    pub ti1: (u64, u64),
    /// Load of `F1`'s second execute (`Tj1`).
    pub tj1: (u64, u64),
    /// Load of `F3`'s execute (`Ti2`).
    pub ti2: (u64, u64),
    /// Load of `F2`'s first execute (`Ti3`).
    pub ti3: (u64, u64),
    /// Load of `F2`'s second execute (`Tj3`).
    pub tj3: (u64, u64),
    /// Load of `F4`'s execute (`Ti4`).
    pub ti4: (u64, u64),
}

impl Default for Params {
    /// Balanced defaults: moderate bases with visible size dependence.
    fn default() -> Self {
        Params {
            ti1: (100, 2),
            tj1: (200, 3),
            ti2: (300, 1),
            ti3: (150, 2),
            tj3: (250, 1),
            ti4: (120, 2),
        }
    }
}

fn load((base, per_unit): (u64, u64)) -> LoadModel {
    LoadModel::PerUnit { base, per_unit }
}

/// Relation ids of one stage, in paper order (`M1` … `M6`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageRelations {
    /// Stage input (the previous stage's `M6`, or the external input).
    pub m1: RelationId,
    /// `F1 → F2`.
    pub m2: RelationId,
    /// `F1 → F3`.
    pub m3: RelationId,
    /// `F3 → F2`.
    pub m4: RelationId,
    /// `F2 → F4`.
    pub m5: RelationId,
    /// Stage output.
    pub m6: RelationId,
}

/// A built didactic architecture plus its relation map.
#[derive(Clone, Debug)]
pub struct Didactic {
    /// The validated architecture.
    pub arch: Architecture,
    /// Per-stage relation ids.
    pub stages: Vec<StageRelations>,
}

impl Didactic {
    /// The external input relation (`M1` of the first stage).
    pub fn input(&self) -> RelationId {
        self.stages.first().expect("at least one stage").m1
    }

    /// The external output relation (`M6` of the last stage).
    pub fn output(&self) -> RelationId {
        self.stages.last().expect("at least one stage").m6
    }
}

/// Builds the single-stage didactic architecture of the paper's Fig. 1.
///
/// # Errors
///
/// Propagates [`ModelError`] from validation (the builder itself is
/// well-formed, so this only fails if `Params` are pathological).
pub fn architecture(params: Params) -> Result<Architecture, ModelError> {
    Ok(chained(1, params)?.arch)
}

/// Builds `stages` chained copies of the didactic example (Table I's
/// "distinct architecture models").
///
/// # Errors
///
/// Returns [`ModelError`] if validation fails.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn chained(stages: usize, params: Params) -> Result<Didactic, ModelError> {
    assert!(stages > 0, "at least one stage required");
    let mut app = Application::new();
    let mut platform = Platform::new();
    let mut mapping = Mapping::new();
    let mut stage_rels = Vec::with_capacity(stages);

    let mut stage_input = app.add_input("M1", RelationKind::Rendezvous);
    for s in 0..stages {
        let tag = |m: &str| {
            if stages == 1 {
                m.to_string()
            } else {
                format!("{m}.{s}")
            }
        };
        let m1 = stage_input;
        let m2 = app.add_relation(tag("M2"), RelationKind::Rendezvous);
        let m3 = app.add_relation(tag("M3"), RelationKind::Rendezvous);
        let m4 = app.add_relation(tag("M4"), RelationKind::Rendezvous);
        let m5 = app.add_relation(tag("M5"), RelationKind::Rendezvous);
        let m6 = if s + 1 == stages {
            app.add_output(tag("M6"), RelationKind::Rendezvous)
        } else {
            app.add_relation(tag("M6"), RelationKind::Rendezvous)
        };

        let f1 = app.add_function(
            tag("F1"),
            Behavior::new()
                .read(m1)
                .execute(load(params.ti1))
                .write(m2)
                .execute(load(params.tj1))
                .write(m3),
        );
        let f2 = app.add_function(
            tag("F2"),
            Behavior::new()
                .read(m2)
                .execute(load(params.ti3))
                .read(m4)
                .execute(load(params.tj3))
                .write(m5),
        );
        let f3 = app.add_function(
            tag("F3"),
            Behavior::new()
                .read(m3)
                .execute(load(params.ti2))
                .write(m4),
        );
        let f4 = app.add_function(
            tag("F4"),
            Behavior::new()
                .read(m5)
                .execute(load(params.ti4))
                .write(m6),
        );

        let p1 = platform.add_resource(tag("P1"), Concurrency::Sequential, 1);
        let p2 = platform.add_resource(tag("P2"), Concurrency::Unlimited, 1);
        mapping.assign(f1, p1);
        mapping.assign(f2, p1);
        mapping.assign(f3, p2);
        mapping.assign(f4, p2);

        stage_rels.push(StageRelations {
            m1,
            m2,
            m3,
            m4,
            m5,
            m6,
        });
        stage_input = m6;
    }

    Ok(Didactic {
        arch: Architecture::new(app, platform, mapping)?,
        stages: stage_rels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_shape() {
        let d = chained(1, Params::default()).unwrap();
        let app = d.arch.app();
        assert_eq!(app.functions().len(), 4);
        assert_eq!(app.relations().len(), 6);
        assert_eq!(app.external_inputs(), vec![d.input()]);
        assert_eq!(app.external_outputs(), vec![d.output()]);
        assert_eq!(d.arch.platform().len(), 2);
        // P1 serves F1's two executes then F2's two.
        let sched = d.arch.schedule(crate::ids::ResourceId::from_index(0));
        assert_eq!(sched.len(), 4);
    }

    #[test]
    fn chained_stages_share_boundaries() {
        let d = chained(3, Params::default()).unwrap();
        assert_eq!(d.stages.len(), 3);
        assert_eq!(d.stages[0].m6, d.stages[1].m1);
        assert_eq!(d.stages[1].m6, d.stages[2].m1);
        let app = d.arch.app();
        // 6 relations for the first stage + 5 per additional stage.
        assert_eq!(app.relations().len(), 6 + 5 * 2);
        assert_eq!(app.functions().len(), 12);
        assert_eq!(d.arch.platform().len(), 6);
        assert_eq!(app.external_inputs().len(), 1);
        assert_eq!(app.external_outputs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_rejected() {
        let _ = chained(0, Params::default());
    }
}
