//! Model-construction errors.

use crate::ids::{FunctionId, RelationId, ResourceId};

/// A structural defect in an application, platform, or mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A behaviour references a relation that does not exist.
    UnknownRelation {
        /// The missing relation id.
        relation: RelationId,
        /// Name of the referencing function.
        function: String,
    },
    /// Two different functions read the same relation.
    MultipleConsumers {
        /// Name of the over-subscribed relation.
        relation: String,
    },
    /// Two different functions write the same relation.
    MultipleProducers {
        /// Name of the over-subscribed relation.
        relation: String,
    },
    /// A function has an empty behaviour.
    EmptyBehavior {
        /// Name of the offending function.
        function: String,
    },
    /// A relation is referenced by no function at all.
    DanglingRelation {
        /// Name of the unused relation.
        relation: String,
    },
    /// A function is not allocated to any resource.
    UnmappedFunction {
        /// The unmapped function.
        function: FunctionId,
        /// Its diagnostic name.
        name: String,
    },
    /// A mapping references a resource that does not exist.
    UnknownResource {
        /// The missing resource id.
        resource: ResourceId,
    },
    /// A mapping references a function that does not exist.
    UnknownFunction {
        /// The missing function id.
        function: FunctionId,
    },
    /// An external relation has no stimulus / no environment attached where
    /// one is required.
    MissingStimulus {
        /// The external input relation without a stimulus.
        relation: RelationId,
        /// Its diagnostic name.
        name: String,
    },
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::UnknownRelation { relation, function } => {
                write!(f, "function {function} references unknown relation {relation}")
            }
            ModelError::MultipleConsumers { relation } => {
                write!(f, "relation {relation} has more than one consumer")
            }
            ModelError::MultipleProducers { relation } => {
                write!(f, "relation {relation} has more than one producer")
            }
            ModelError::EmptyBehavior { function } => {
                write!(f, "function {function} has an empty behaviour")
            }
            ModelError::DanglingRelation { relation } => {
                write!(f, "relation {relation} is referenced by no function")
            }
            ModelError::UnmappedFunction { function, name } => {
                write!(f, "function {name} ({function}) is not mapped to a resource")
            }
            ModelError::UnknownResource { resource } => {
                write!(f, "mapping references unknown resource {resource}")
            }
            ModelError::UnknownFunction { function } => {
                write!(f, "mapping references unknown function {function}")
            }
            ModelError::MissingStimulus { relation, name } => {
                write!(f, "external input {name} ({relation}) has no stimulus")
            }
        }
    }
}

impl std::error::Error for ModelError {}
