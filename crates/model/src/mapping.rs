//! Mapping layer: function-to-resource allocation and static schedules.
//!
//! "The aim of the mapping layer is to correctly manage platform resources
//! when the application model executes, taking into account the concurrency
//! of each platform resource and the defined arbitration and scheduling
//! policies" (paper Section III.A). This reproduction targets the paper's
//! stated scope: **statically scheduled architectures with no pre-emption**.
//! Each resource serves its execute statements in a fixed cyclic order — the
//! *slot order* — derived from the allocation order of functions and the
//! program order of their execute statements.

use std::collections::BTreeMap;

use crate::app::{Application, Stmt};
use crate::ids::{FunctionId, ResourceId};
use crate::platform::Platform;
use crate::ModelError;

/// Function-to-resource allocation.
///
/// The order in which functions are allocated to a resource defines the
/// static schedule order on that resource.
#[derive(Clone, Debug, Default)]
pub struct Mapping {
    /// Allocation in insertion order: `(function, resource)`.
    alloc: Vec<(FunctionId, ResourceId)>,
}

impl Mapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Mapping::default()
    }

    /// Allocates `function` to `resource`. Repeated allocation of the same
    /// function replaces the earlier entry (keeping the new schedule
    /// position).
    pub fn assign(&mut self, function: FunctionId, resource: ResourceId) -> &mut Self {
        self.alloc.retain(|(f, _)| *f != function);
        self.alloc.push((function, resource));
        self
    }

    /// The resource a function is allocated to, if any.
    pub fn resource_of(&self, function: FunctionId) -> Option<ResourceId> {
        self.alloc
            .iter()
            .find(|(f, _)| *f == function)
            .map(|(_, r)| *r)
    }

    /// All allocations in schedule order.
    pub fn allocations(&self) -> &[(FunctionId, ResourceId)] {
        &self.alloc
    }
}

/// One execute-statement occurrence in a resource's static cyclic schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Slot {
    /// The executing function.
    pub function: FunctionId,
    /// Statement index of the execute within the function's behaviour.
    pub stmt: usize,
}

/// The static cyclic schedule of one resource: the execute statements it
/// serves, in order, once per iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResourceSchedule {
    /// Slots in static order.
    pub slots: Vec<Slot>,
}

impl ResourceSchedule {
    /// Position of a slot in the cyclic order, if scheduled on this resource.
    pub fn position(&self, function: FunctionId, stmt: usize) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.function == function && s.stmt == stmt)
    }

    /// Number of slots per iteration.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when no execute statement is scheduled here.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A complete, validated architecture model: application + platform +
/// mapping, with the static schedules precomputed.
///
/// This is the input shared by the conventional elaboration
/// ([`crate::elaborate`]) and by the automatic TDG derivation in
/// `evolve-core` — both interpret exactly the same structure, which is what
/// makes the instant-for-instant accuracy comparison meaningful.
#[derive(Clone, Debug)]
pub struct Architecture {
    app: Application,
    platform: Platform,
    mapping: Mapping,
    schedules: Vec<ResourceSchedule>,
}

impl Architecture {
    /// Validates the triple and precomputes per-resource static schedules.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when the application is structurally
    /// invalid, a function is unmapped, or the mapping references unknown
    /// entities.
    pub fn new(
        mut app: Application,
        platform: Platform,
        mapping: Mapping,
    ) -> Result<Self, ModelError> {
        app.validate()?;
        for (function, resource) in mapping.allocations() {
            if function.index() >= app.functions().len() {
                return Err(ModelError::UnknownFunction {
                    function: *function,
                });
            }
            if resource.index() >= platform.len() {
                return Err(ModelError::UnknownResource {
                    resource: *resource,
                });
            }
        }
        for (idx, f) in app.functions().iter().enumerate() {
            let fid = FunctionId::from_index(idx);
            if mapping.resource_of(fid).is_none() {
                return Err(ModelError::UnmappedFunction {
                    function: fid,
                    name: f.name.clone(),
                });
            }
        }
        // Static slot order per resource: functions in allocation order,
        // execute statements in program order.
        let mut per_resource: BTreeMap<usize, Vec<Slot>> = BTreeMap::new();
        for (function, resource) in mapping.allocations() {
            let behavior = &app.function(*function).behavior;
            for (stmt_idx, stmt) in behavior.stmts().iter().enumerate() {
                if matches!(stmt, Stmt::Execute(_)) {
                    per_resource.entry(resource.index()).or_default().push(Slot {
                        function: *function,
                        stmt: stmt_idx,
                    });
                }
            }
        }
        let schedules = (0..platform.len())
            .map(|r| ResourceSchedule {
                slots: per_resource.remove(&r).unwrap_or_default(),
            })
            .collect();
        Ok(Architecture {
            app,
            platform,
            mapping,
            schedules,
        })
    }

    /// The application model.
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// The platform model.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The static schedule of a resource.
    pub fn schedule(&self, resource: ResourceId) -> &ResourceSchedule {
        &self.schedules[resource.index()]
    }

    /// All static schedules, indexed by [`ResourceId`].
    pub fn schedules(&self) -> &[ResourceSchedule] {
        &self.schedules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Behavior, RelationKind};
    use crate::platform::Concurrency;
    use crate::workload::LoadModel;

    fn sample() -> (Application, Platform, Mapping) {
        let mut app = Application::new();
        let input = app.add_input("in", RelationKind::Rendezvous);
        let mid = app.add_relation("mid", RelationKind::Rendezvous);
        let out = app.add_output("out", RelationKind::Rendezvous);
        let f1 = app.add_function(
            "F1",
            Behavior::new()
                .read(input)
                .execute(LoadModel::Constant(1))
                .write(mid)
                .execute(LoadModel::Constant(2)),
        );
        let f2 = app.add_function(
            "F2",
            Behavior::new()
                .read(mid)
                .execute(LoadModel::Constant(3))
                .write(out),
        );
        let mut platform = Platform::new();
        let p1 = platform.add_resource("P1", Concurrency::Sequential, 1);
        let mut mapping = Mapping::new();
        mapping.assign(f1, p1).assign(f2, p1);
        (app, platform, mapping)
    }

    #[test]
    fn schedule_follows_allocation_then_program_order() {
        let (app, platform, mapping) = sample();
        let arch = Architecture::new(app, platform, mapping).unwrap();
        let sched = arch.schedule(ResourceId::from_index(0));
        assert_eq!(sched.len(), 3);
        assert_eq!(
            sched.slots,
            vec![
                Slot {
                    function: FunctionId::from_index(0),
                    stmt: 1
                },
                Slot {
                    function: FunctionId::from_index(0),
                    stmt: 3
                },
                Slot {
                    function: FunctionId::from_index(1),
                    stmt: 1
                },
            ]
        );
        assert_eq!(sched.position(FunctionId::from_index(1), 1), Some(2));
        assert_eq!(sched.position(FunctionId::from_index(1), 0), None);
    }

    #[test]
    fn unmapped_function_rejected() {
        let (app, platform, _) = sample();
        let err = Architecture::new(app, platform, Mapping::new()).unwrap_err();
        assert!(matches!(err, ModelError::UnmappedFunction { .. }));
    }

    #[test]
    fn unknown_resource_rejected() {
        let (app, platform, mut mapping) = sample();
        mapping.assign(FunctionId::from_index(0), ResourceId::from_index(9));
        let err = Architecture::new(app, platform, mapping).unwrap_err();
        assert!(matches!(err, ModelError::UnknownResource { .. }));
    }

    #[test]
    fn reassignment_moves_schedule_position() {
        let (app, platform, mut mapping) = sample();
        // Re-assign F1 after F2: schedule order becomes F2 then F1.
        mapping.assign(FunctionId::from_index(0), ResourceId::from_index(0));
        let arch = Architecture::new(app, platform, mapping).unwrap();
        let sched = arch.schedule(ResourceId::from_index(0));
        assert_eq!(sched.slots[0].function, FunctionId::from_index(1));
    }
}
