//! Platform model: processing resources.
//!
//! A platform is a set of processing resources with per-resource concurrency
//! and speed. In the paper's didactic example `P1` "can only process one
//! function at a time" ([`Concurrency::Sequential`]) while `P2` "is a set of
//! dedicated hardware resources and therefore can compute F3 and F4 at the
//! same time" ([`Concurrency::Unlimited`]). The limited-concurrency variant
//! discussed with the modified eq. (2) is [`Concurrency::Limited`].

use crate::ids::ResourceId;

/// How many executions a resource can serve simultaneously.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Concurrency {
    /// One execution at a time (a processor running a static schedule with
    /// no pre-emption).
    Sequential,
    /// At most `n` simultaneous executions, still granted in static
    /// schedule order.
    Limited(u32),
    /// Fully parallel dedicated hardware.
    Unlimited,
}

impl Concurrency {
    /// The number of servers, or `None` for unlimited.
    pub fn servers(self) -> Option<u32> {
        match self {
            Concurrency::Sequential => Some(1),
            Concurrency::Limited(n) => Some(n),
            Concurrency::Unlimited => None,
        }
    }
}

/// A processing resource.
#[derive(Clone, Debug)]
pub struct Resource {
    /// Diagnostic name (`"P1"`, `"dsp"`, …).
    pub name: String,
    /// Concurrency discipline.
    pub concurrency: Concurrency,
    /// Execution speed in abstract operations per tick. With the 1 tick =
    /// 1 ns convention, 1 op/tick = 1 GOPS.
    pub speed_ops_per_tick: u64,
}

/// The platform: processing resources indexed by [`ResourceId`].
///
/// # Examples
///
/// ```
/// use evolve_model::{Concurrency, Platform};
///
/// let mut platform = Platform::new();
/// let p1 = platform.add_resource("P1", Concurrency::Sequential, 1);
/// let p2 = platform.add_resource("P2", Concurrency::Unlimited, 8);
/// assert_eq!(platform.resource(p1).name, "P1");
/// assert_eq!(platform.resource(p2).concurrency, Concurrency::Unlimited);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Platform {
    resources: Vec<Resource>,
}

impl Platform {
    /// Creates an empty platform.
    pub fn new() -> Self {
        Platform::default()
    }

    /// Adds a resource.
    ///
    /// # Panics
    ///
    /// Panics if `speed_ops_per_tick` is zero or `Limited(0)` is given.
    pub fn add_resource(
        &mut self,
        name: impl Into<String>,
        concurrency: Concurrency,
        speed_ops_per_tick: u64,
    ) -> ResourceId {
        assert!(speed_ops_per_tick > 0, "resource speed must be nonzero");
        assert!(
            concurrency != Concurrency::Limited(0),
            "limited concurrency must allow at least one execution"
        );
        let id = ResourceId(self.resources.len());
        self.resources.push(Resource {
            name: name.into(),
            concurrency,
            speed_ops_per_tick,
        });
        id
    }

    /// The resources, indexed by [`ResourceId`].
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// A resource by id.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0]
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Returns `true` when the platform has no resources.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn servers() {
        assert_eq!(Concurrency::Sequential.servers(), Some(1));
        assert_eq!(Concurrency::Limited(3).servers(), Some(3));
        assert_eq!(Concurrency::Unlimited.servers(), None);
    }

    #[test]
    #[should_panic(expected = "speed must be nonzero")]
    fn zero_speed_rejected() {
        let mut p = Platform::new();
        p.add_resource("bad", Concurrency::Sequential, 0);
    }

    #[test]
    #[should_panic(expected = "at least one execution")]
    fn limited_zero_rejected() {
        let mut p = Platform::new();
        p.add_resource("bad", Concurrency::Limited(0), 1);
    }
}
