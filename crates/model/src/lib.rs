//! Architecture performance-model layer: applications, platforms, mappings,
//! workloads, and the conventional event-driven elaboration.
//!
//! This crate reproduces the modeling substrate of *"A Dynamic Computation
//! Method for Fast and Accurate Performance Evaluation of Multi-Core
//! Architectures"* (Le Nours, Postula, Bergmann — DATE 2014): performance
//! models "formed by combination of application and platform models"
//! (Section II) in which workload models express the computation loads an
//! application causes when executed.
//!
//! # Layers
//!
//! * [`Application`] — functions as `read`/`execute`/`write` loop bodies
//!   ([`Behavior`]) connected by relations (rendezvous or FIFO).
//! * [`Platform`] — processing resources with [`Concurrency`] disciplines
//!   and speeds.
//! * [`Mapping`] / [`Architecture`] — allocation and the static,
//!   non-preemptive schedules the paper assumes.
//! * [`LoadModel`] — data-size-dependent computation loads, deterministic in
//!   `(function, statement, k, size)` so the conventional and equivalent
//!   models observe identical durations.
//! * [`elaborate`] — builds the conventional, fully event-driven model on
//!   the `evolve-des` kernel (the Fig. 1 baseline).
//! * [`ExecRecord`] / [`ResourceTrace`] / [`UsageSeries`] — resource-usage
//!   observation (Fig. 2(b), Fig. 6(b)(c)).
//! * [`didactic`] — the paper's example architecture and its Table I chains.
//!
//! # Example
//!
//! Run the didactic architecture for five tokens and inspect instants:
//!
//! ```
//! use evolve_des::Duration;
//! use evolve_model::{didactic, elaborate, Environment, Stimulus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = didactic::chained(1, didactic::Params::default())?;
//! let env = Environment::new().stimulus(
//!     d.input(),
//!     Stimulus::periodic(5, Duration::from_ticks(10_000), |k| 64 + k),
//! );
//! let report = elaborate(&d.arch, &env)?.run();
//! assert_eq!(report.instants(d.output()).len(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod app;
pub mod didactic;
mod elaborate;
mod export;
pub mod metrics;
mod error;
mod ids;
mod mapping;
mod observe;
mod platform;
mod stimulus;
mod token;
mod workload;

pub use app::{Application, Behavior, Function, Relation, RelationKind, Stmt};
pub use elaborate::{
    attach_environment, create_channels, elaborate, spawn_function_processes, Environment,
    RunReport, SharedTrace, Simulation,
};
pub use error::ModelError;
pub use export::{instants_to_csv, usage_series_to_csv, write_vcd};
pub use ids::{FunctionId, RelationId, ResourceId};
pub use mapping::{Architecture, Mapping, ResourceSchedule, Slot};
pub use observe::{ExecRecord, ResourceTrace, UsageSeries};
pub use platform::{Concurrency, Platform, Resource};
pub use stimulus::{varying_sizes, Arrival, Stimulus};
pub use token::{SizeModel, Token};
pub use workload::{duration_for, LoadContext, LoadModel};
