//! Wire-protocol hardening: no input a peer can send — truncated,
//! oversized, garbage, or disconnected mid-frame — may panic the codec
//! or take the daemon down.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use evolve_core::EvalBackend;
use evolve_explore::{ModelKind, ModelSpec, TraceSpec};
use evolve_serve::{
    decode_request, decode_response, encode_request, encode_response, Bind, EvalRequest,
    EvalResponse, FrameError, FrameReader, ModelRef, Request, Response, ServeClient, ServeConfig,
    Server, TracePayload, WireError,
};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(b'a'..=b'z', 0..12)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii"))
}

fn message_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(b' '..=b'~', 0..40)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii"))
}

fn spec_strategy() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        (1usize..6, 0usize..100, any::<bool>()).prop_map(|(stages, padding, worklist)| {
            ModelSpec {
                kind: ModelKind::Didactic { stages },
                padding,
                backend: if worklist {
                    EvalBackend::Worklist
                } else {
                    EvalBackend::Compiled
                },
            }
        }),
        (1usize..9, any::<u64>(), any::<u64>(), 0usize..100).prop_map(
            |(stages, base, per_unit, padding)| ModelSpec {
                kind: ModelKind::Pipeline {
                    stages,
                    base,
                    per_unit,
                },
                padding,
                backend: EvalBackend::Compiled,
            }
        ),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    let trace = prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(tokens, min_size, max_size, mean_period, seed)| TracePayload::Generated(TraceSpec {
                tokens,
                min_size,
                max_size,
                mean_period,
                seed,
            })
        ),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..20)
            .prop_map(TracePayload::Offers),
    ];
    let model = prop_oneof![
        spec_strategy().prop_map(ModelRef::Inline),
        name_strategy().prop_map(ModelRef::Named),
    ];
    prop_oneof![
        (any::<u64>(), model, trace)
            .prop_map(|(id, model, trace)| Request::Eval(EvalRequest { id, model, trace })),
        (name_strategy(), spec_strategy())
            .prop_map(|(name, spec)| Request::Load { name, spec }),
        any::<u64>().prop_map(|nonce| Request::Ping { nonce }),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    let ok = (
        any::<u64>(),
        proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..16),
        proptest::collection::vec(any::<u64>(), 0..16),
        any::<bool>(),
        any::<bool>(),
        any::<u32>(),
    )
        .prop_map(
            |(id, outputs, input_acks, delta_attached, batched, lanes_in_batch)| {
                Response::EvalOk(EvalResponse {
                    id,
                    outputs,
                    input_acks,
                    engine: [id, 1, 2, 3, 4],
                    ff: [5, 6, 7],
                    delta_attached,
                    delta: [8, 9, 10, 11, 12, 13],
                    batched,
                    lanes_in_batch,
                })
            },
        );
    prop_oneof![
        ok,
        any::<u64>().prop_map(|id| Response::Busy { id }),
        (any::<u64>(), message_strategy())
            .prop_map(|(id, message)| Response::Error { id, message }),
        any::<u64>().prop_map(|nonce| Response::Pong { nonce }),
        name_strategy().prop_map(|name| Response::Loaded { name }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request round-trips bitwise through the codec.
    #[test]
    fn request_roundtrip(req in request_strategy()) {
        let payload = encode_request(&req);
        prop_assert_eq!(decode_request(&payload), Ok(req));
    }

    /// Every response round-trips bitwise through the codec.
    #[test]
    fn response_roundtrip(resp in response_strategy()) {
        let payload = encode_response(&resp);
        prop_assert_eq!(decode_response(&payload), Ok(resp));
    }

    /// Arbitrary bytes never panic the decoders — they decode or they
    /// return a typed error.
    #[test]
    fn garbage_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_request(&payload);
        let _ = decode_response(&payload);
    }

    /// Truncating a valid payload anywhere never panics, and truncating
    /// strictly inside it never decodes successfully.
    #[test]
    fn truncated_payloads_error(req in request_strategy(), cut in 0usize..100) {
        let payload = encode_request(&req);
        let cut = cut % payload.len().max(1);
        prop_assert!(decode_request(&payload[..cut]).is_err());
    }

    /// The incremental de-framer never panics on arbitrary chunked
    /// input.
    #[test]
    fn frame_reader_survives_garbage(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..40), 0..8)
    ) {
        let mut frames = FrameReader::new(1024);
        for chunk in &chunks {
            frames.extend(chunk);
            loop {
                match frames.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => return Ok(()),
                }
            }
        }
    }
}

/// A length prefix beyond the cap is rejected as soon as it is visible —
/// before any payload buffer is allocated — by both frame readers.
#[test]
fn oversized_length_prefix_rejected_before_allocation() {
    // Claim a 3 GiB payload. If either reader allocated first, this test
    // would OOM rather than return a typed error.
    let huge: u32 = 3 * 1024 * 1024 * 1024;
    let mut frames = FrameReader::new(1024);
    frames.extend(&huge.to_le_bytes());
    assert!(matches!(
        frames.next_frame(),
        Err(FrameError::Oversize { len, max: 1024 }) if len == u64::from(huge)
    ));

    let mut wire = huge.to_le_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 16]);
    let mut cursor = &wire[..];
    assert!(matches!(
        evolve_serve::protocol::read_frame(&mut cursor, 1024),
        Err(FrameError::Oversize { .. })
    ));
}

/// EOF exactly at a frame boundary is a clean close; EOF inside a frame
/// is the typed `Truncated` error.
#[test]
fn truncated_frames_are_typed_errors() {
    let payload = encode_request(&Request::Ping { nonce: 7 });
    let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&payload);

    let mut clean = &wire[..];
    assert!(matches!(
        evolve_serve::protocol::read_frame(&mut clean, 1024),
        Ok(Some(_))
    ));
    assert!(matches!(
        evolve_serve::protocol::read_frame(&mut clean, 1024),
        Ok(None)
    ));

    for cut in 1..wire.len() {
        let mut partial = &wire[..cut];
        assert!(
            matches!(
                evolve_serve::protocol::read_frame(&mut partial, 1024),
                Err(FrameError::Truncated)
            ),
            "cut at {cut} should be Truncated"
        );
    }
}

/// Element counts are validated against the bytes present before any
/// vector is reserved.
#[test]
fn hostile_element_counts_are_rejected() {
    // An Eval frame claiming u32::MAX explicit offers with a 1-byte body.
    let mut payload = vec![0x01];
    payload.extend_from_slice(&0u64.to_le_bytes()); // id
    payload.push(1); // named model
    payload.extend_from_slice(&1u32.to_le_bytes());
    payload.push(b'm');
    payload.push(1); // offers trace
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    payload.push(0); // one stray byte, nowhere near 16 * u32::MAX
    assert!(matches!(
        decode_request(&payload),
        Err(WireError::TooLong { .. })
    ));
}

/// A client that disconnects mid-frame must not disturb the daemon:
/// later connections work, and requests admitted before the disconnect
/// are still answered.
#[test]
fn mid_stream_disconnect_leaves_server_alive() {
    let server = Server::start(
        ServeConfig {
            shards: 1,
            batch_width: 1,
            ..ServeConfig::default()
        },
        &[Bind::Tcp("127.0.0.1:0".into())],
        None,
    )
    .unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    // Half a frame: a 64-byte length prefix but only 3 payload bytes.
    let mut rude = TcpStream::connect(&addr).unwrap();
    rude.write_all(&64u32.to_le_bytes()).unwrap();
    rude.write_all(&[1, 2, 3]).unwrap();
    drop(rude);

    std::thread::sleep(Duration::from_millis(50));
    let mut polite = ServeClient::connect_tcp(&addr).unwrap();
    let pong = polite.call(&Request::Ping { nonce: 99 }).unwrap();
    assert_eq!(pong, Response::Pong { nonce: 99 });
    server.shutdown_and_join();
}

/// A frame whose payload cannot be decoded gets a typed Error response
/// and leaves the connection usable; an oversize prefix gets an Error
/// and a close (the stream cannot be resynchronised).
#[test]
fn malformed_frames_get_typed_error_responses() {
    let server = Server::start(
        ServeConfig {
            shards: 1,
            batch_width: 1,
            max_frame_len: 4096,
            ..ServeConfig::default()
        },
        &[Bind::Tcp("127.0.0.1:0".into())],
        None,
    )
    .unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    let mut client = ServeClient::connect_tcp(&addr).unwrap();
    {
        // Reach under the client to write a well-framed but undecodable
        // payload, then a valid ping on the same connection.
        let mut raw = TcpStream::connect(&addr).unwrap();
        let junk = [0xee_u8; 10];
        raw.write_all(&(junk.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&junk).unwrap();
        let ping = encode_request(&Request::Ping { nonce: 5 });
        raw.write_all(&(ping.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&ping).unwrap();
        let mut conn = raw;
        let first = evolve_serve::protocol::read_frame(&mut conn, 4096)
            .unwrap()
            .expect("error response expected");
        assert!(matches!(
            evolve_serve::decode_response(&first),
            Ok(Response::Error { id: 0, .. })
        ));
        let second = evolve_serve::protocol::read_frame(&mut conn, 4096)
            .unwrap()
            .expect("pong expected");
        assert_eq!(
            evolve_serve::decode_response(&second),
            Ok(Response::Pong { nonce: 5 })
        );
    }

    // Oversize prefix: typed error response, then close.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(&(1024u32 * 1024 * 1024).to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let mut conn = raw;
    let resp = evolve_serve::protocol::read_frame(&mut conn, 4096)
        .unwrap()
        .expect("error response expected");
    assert!(matches!(
        evolve_serve::decode_response(&resp),
        Ok(Response::Error { id: 0, .. })
    ));
    assert!(matches!(
        evolve_serve::protocol::read_frame(&mut conn, 4096),
        Ok(None)
    ));

    // The daemon is still fine.
    let pong = client.call(&Request::Ping { nonce: 1 }).unwrap();
    assert_eq!(pong, Response::Pong { nonce: 1 });
    server.shutdown_and_join();
}
