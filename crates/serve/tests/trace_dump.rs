//! End-to-end flight-recorder coverage over the wire protocol: a `Dump`
//! request must return a Perfetto-loadable Chrome-trace JSON document
//! with per-shard tracks carrying a span for every lifecycle phase of
//! every admitted request — and must stay well-formed when hostile
//! client-supplied model names reach the trace output via `Load`.

use evolve_core::EvalBackend;
use evolve_explore::{ModelKind, ModelSpec, TraceSpec};
use evolve_obs::json;
use evolve_serve::{
    Bind, EvalRequest, ModelRef, Request, Response, ServeClient, ServeConfig, Server,
    TracePayload,
};

fn pipeline(stages: usize, padding: usize) -> ModelSpec {
    ModelSpec {
        kind: ModelKind::Pipeline {
            stages,
            base: 40,
            per_unit: 1,
        },
        padding,
        backend: EvalBackend::Compiled,
    }
}

fn generated(tokens: u64, seed: u64) -> TracePayload {
    TracePayload::Generated(TraceSpec {
        tokens,
        min_size: 1,
        max_size: 32,
        mean_period: 200,
        seed,
    })
}

fn eval(id: u64, model: ModelRef) -> Request {
    Request::Eval(EvalRequest {
        id,
        model,
        trace: generated(16, id.wrapping_mul(0x9e37_79b9)),
    })
}

fn dump(client: &mut ServeClient) -> String {
    match client.call(&Request::Dump).expect("dump call") {
        Response::Trace { json } => json,
        other => panic!("Dump answered with {other:?}"),
    }
}

/// Every admitted request leaves one span per serve lifecycle phase in
/// the dump, on a shard track, tagged with its correlation id.
#[test]
fn dump_contains_every_phase_for_every_admitted_request() {
    let config = ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(config, &[Bind::Tcp("127.0.0.1:0".into())], None).unwrap();
    let target = format!("tcp:{}", server.tcp_addr().unwrap());
    let mut client = ServeClient::connect(&target).unwrap();

    const REQUESTS: u64 = 7;
    for id in 0..REQUESTS {
        let resp = client.call(&eval(id, ModelRef::Inline(pipeline(4, 16)))).unwrap();
        assert!(matches!(resp, Response::EvalOk(_)), "eval failed: {resp:?}");
    }

    let trace = dump(&mut client);
    assert!(json::parses(&trace), "trace dump is not valid JSON");
    assert!(
        trace.contains("\"args\":{\"name\":\"shard-0\"}"),
        "no shard-0 thread_name metadata in the trace"
    );
    for phase in ["decode", "queue_wait", "batch_form", "eval"] {
        let spans = trace.matches(&format!("\"name\":\"{phase}\"")).count() as u64;
        assert!(
            spans >= REQUESTS,
            "expected >= {REQUESTS} {phase:?} spans, found {spans}"
        );
    }
    // Encode/Write spans are published *after* the response frame is on
    // the wire (the Write span must cover the write), so a Dump racing
    // right behind the last response may not see that response's pair.
    for phase in ["encode", "write"] {
        let spans = trace.matches(&format!("\"name\":\"{phase}\"")).count() as u64;
        assert!(
            spans >= REQUESTS - 1,
            "expected >= {} {phase:?} spans, found {spans}",
            REQUESTS - 1
        );
    }
    // Correlation ids are assigned densely at admission, starting at 1.
    for corr in 1..=REQUESTS {
        assert!(
            trace.contains(&format!("\"corr\":{corr}")),
            "no span carries correlation id {corr}"
        );
    }
    server.shutdown_and_join();
}

/// Hostile named-model ids (quotes, control characters, newlines) reach
/// the trace as span annotations via `Load` + named `Eval`; the dumped
/// document must still parse.
#[test]
fn hostile_model_names_cannot_break_the_trace_json() {
    let server =
        Server::start(ServeConfig::default(), &[Bind::Tcp("127.0.0.1:0".into())], None).unwrap();
    let target = format!("tcp:{}", server.tcp_addr().unwrap());
    let mut client = ServeClient::connect(&target).unwrap();

    let hostile = "evil\"model\n\u{1}\\u2028\u{2028}";
    let resp = client
        .call(&Request::Load {
            name: hostile.into(),
            spec: pipeline(3, 8),
        })
        .unwrap();
    assert!(matches!(resp, Response::Loaded { .. }), "load failed: {resp:?}");
    let resp = client.call(&eval(1, ModelRef::Named(hostile.into()))).unwrap();
    assert!(matches!(resp, Response::EvalOk(_)), "named eval failed: {resp:?}");

    let trace = dump(&mut client);
    assert!(
        json::parses(&trace),
        "hostile model name produced an unparsable trace"
    );
    assert!(
        trace.contains("evil\\\"model\\n"),
        "hostile name was not escaped into the trace"
    );
    server.shutdown_and_join();
}

/// With the recorder disabled, `Dump` still answers — with an empty but
/// valid trace document — rather than erroring or closing the stream.
#[test]
fn dump_with_recorder_disabled_returns_empty_trace() {
    let config = ServeConfig {
        flight_recorder: false,
        ..ServeConfig::default()
    };
    let server = Server::start(config, &[Bind::Tcp("127.0.0.1:0".into())], None).unwrap();
    let target = format!("tcp:{}", server.tcp_addr().unwrap());
    let mut client = ServeClient::connect(&target).unwrap();

    let resp = client.call(&eval(1, ModelRef::Inline(pipeline(4, 16)))).unwrap();
    assert!(matches!(resp, Response::EvalOk(_)));
    let trace = dump(&mut client);
    assert!(json::parses(&trace));
    assert_eq!(trace, "{\"traceEvents\":[]}");
    server.shutdown_and_join();
}

/// Partition workers record sweep spans on their own `shard-N/worker-P`
/// tracks when a wide partitioned-backend model is served.
#[test]
fn partitioned_eval_records_worker_sweep_spans() {
    let config = ServeConfig {
        shards: 1,
        partition_threads: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(config, &[Bind::Tcp("127.0.0.1:0".into())], None).unwrap();
    let target = format!("tcp:{}", server.tcp_addr().unwrap());
    let mut client = ServeClient::connect(&target).unwrap();

    // Must clear the partition planner's node floor (DEFAULT_MIN_NODES)
    // or the engine silently falls back to the serial sweep.
    let wide = ModelSpec {
        kind: ModelKind::WidePipeline {
            stages: 6,
            base: 80,
            per_unit: 2,
            chains: 32,
        },
        padding: 4_096,
        backend: EvalBackend::CompiledParallel,
    };
    let resp = client.call(&eval(1, ModelRef::Inline(wide))).unwrap();
    assert!(matches!(resp, Response::EvalOk(_)), "wide eval failed: {resp:?}");

    let trace = dump(&mut client);
    assert!(json::parses(&trace));
    assert!(
        trace.contains("\"args\":{\"name\":\"shard-0/worker-0\"}")
            && trace.contains("\"args\":{\"name\":\"shard-0/worker-1\"}"),
        "per-worker tracks missing from the trace"
    );
    assert!(
        trace.contains("\"name\":\"sweep\""),
        "no sweep spans on the worker tracks"
    );
    server.shutdown_and_join();
}
