//! Daemon conformance: every response must be bitwise identical to a
//! fresh scalar [`Engine`](evolve_core::Engine) evaluation of the same
//! request, whichever serving path answered it — affinity-batched,
//! ejected-to-scalar, or delta-chained.
//!
//! The reference runs with fast-forward *off* and no delta chain, so the
//! comparison also re-pins (end-to-end, through the wire) the engine
//! invariants the core conformance suites establish: fast-forward,
//! lockstep batching, and delta attachment are observationally
//! invisible.

use std::collections::HashMap;
use std::time::Duration;

use evolve_core::{EvalBackend, FastForward};
use evolve_explore::cache::{drive_prepared, prepare, DeltaMode, EngineOptions};
use evolve_explore::{ModelKind, ModelSpec, TraceSpec};
use evolve_serve::{
    Bind, EvalRequest, EvalResponse, ModelRef, Request, Response, ServeClient, ServeConfig,
    Server, TracePayload,
};
use proptest::prelude::*;

fn reference(spec: &ModelSpec, trace: &TracePayload) -> (Vec<(u64, u64, u64)>, Vec<u64>) {
    let options = EngineOptions {
        record_observations: false,
        fast_forward: FastForward::Off,
        ..EngineOptions::default()
    };
    let arrivals = trace.arrivals();
    let mut prepared = prepare(spec, &options);
    let drive = drive_prepared(&mut prepared, &arrivals, &options, &mut None, DeltaMode::Off);
    (drive.outcome.outputs, drive.outcome.input_acks)
}

fn eval(id: u64, spec: &ModelSpec, trace: &TracePayload) -> Request {
    Request::Eval(EvalRequest {
        id,
        model: ModelRef::Inline(spec.clone()),
        trace: trace.clone(),
    })
}

fn expect_ok(resp: Response) -> EvalResponse {
    match resp {
        Response::EvalOk(ok) => ok,
        other => panic!("expected EvalOk, got {other:?}"),
    }
}

fn pipeline(stages: usize, base: u64, per_unit: u64, padding: usize) -> ModelSpec {
    ModelSpec {
        kind: ModelKind::Pipeline {
            stages,
            base,
            per_unit,
        },
        padding,
        backend: EvalBackend::Compiled,
    }
}

fn generated(tokens: u64, seed: u64) -> TracePayload {
    TracePayload::Generated(TraceSpec {
        tokens,
        min_size: 1,
        max_size: 96,
        mean_period: 300,
        seed,
    })
}

/// Pipelining enough same-model requests fills the affinity group to the
/// batch width and dispatches one lockstep batch — and every lane stays
/// bitwise identical to the scalar reference.
#[test]
fn full_affinity_batch_matches_scalar_reference() {
    let config = ServeConfig {
        shards: 1,
        batch_width: 4,
        max_batch_delay: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let server = Server::start(config, &[Bind::Tcp("127.0.0.1:0".into())], None).unwrap();
    let addr = server.tcp_addr().unwrap();
    let mut client = ServeClient::connect_tcp(&addr.to_string()).unwrap();

    let spec = pipeline(4, 100, 3, 0);
    let traces: Vec<TracePayload> = (0..4).map(|i| generated(12, 0xfeed + i)).collect();
    for (i, trace) in traces.iter().enumerate() {
        client.send(&eval(i as u64, &spec, trace)).unwrap();
    }
    let mut by_id = HashMap::new();
    for _ in 0..4 {
        let ok = expect_ok(client.recv().unwrap());
        by_id.insert(ok.id, ok);
    }
    for (i, trace) in traces.iter().enumerate() {
        let ok = &by_id[&(i as u64)];
        assert!(ok.batched, "lane {i} should have been served in a batch");
        assert_eq!(ok.lanes_in_batch, 4);
        let (outputs, acks) = reference(&spec, trace);
        assert_eq!(ok.outputs, outputs, "lane {i} outputs diverged");
        assert_eq!(ok.input_acks, acks, "lane {i} acks diverged");
    }
    server.shutdown_and_join();
}

/// With batching effectively disabled (width 1), sequential same-family
/// requests chain through the delta cache: the first captures a base,
/// the second attaches it — and both stay bitwise identical to the
/// reference.
#[test]
fn delta_chained_requests_match_scalar_reference() {
    let config = ServeConfig {
        shards: 1,
        batch_width: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(config, &[Bind::Tcp("127.0.0.1:0".into())], None).unwrap();
    let mut client = ServeClient::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();

    // Same structural family (shape + padding), different load: the
    // second request can reuse the first's captured base cache.
    let base_spec = pipeline(4, 100, 3, 16);
    let sibling_spec = pipeline(4, 80, 5, 16);
    let trace = generated(16, 0xabcd);

    let first = expect_ok(client.call(&eval(1, &base_spec, &trace)).unwrap());
    let second = expect_ok(client.call(&eval(2, &sibling_spec, &trace)).unwrap());
    assert!(
        second.delta_attached,
        "second same-family request should attach the captured base"
    );
    assert!(
        second.delta.iter().any(|&v| v > 0),
        "attached lane should report delta counters"
    );
    for (resp, spec) in [(&first, &base_spec), (&second, &sibling_spec)] {
        let (outputs, acks) = reference(spec, &trace);
        assert_eq!(resp.outputs, outputs);
        assert_eq!(resp.input_acks, acks);
    }
    server.shutdown_and_join();
}

/// Worklist-backend and empty-trace requests are ejected to the scalar
/// path even when grouped, and still match the reference.
#[test]
fn ejected_requests_match_scalar_reference() {
    let config = ServeConfig {
        shards: 1,
        batch_width: 2,
        max_batch_delay: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let server = Server::start(config, &[Bind::Tcp("127.0.0.1:0".into())], None).unwrap();
    let mut client = ServeClient::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();

    let worklist_spec = ModelSpec {
        kind: ModelKind::Didactic { stages: 2 },
        padding: 0,
        backend: EvalBackend::Worklist,
    };
    let trace = generated(10, 0x77);
    let ok = expect_ok(client.call(&eval(7, &worklist_spec, &trace)).unwrap());
    assert!(!ok.batched, "worklist lanes can never run in lockstep");
    let (outputs, acks) = reference(&worklist_spec, &trace);
    assert_eq!(ok.outputs, outputs);
    assert_eq!(ok.input_acks, acks);

    let empty = TracePayload::Offers(Vec::new());
    let ok = expect_ok(client.call(&eval(8, &pipeline(4, 100, 3, 0), &empty)).unwrap());
    assert!(ok.outputs.is_empty());
    assert!(ok.input_acks.is_empty());
    server.shutdown_and_join();
}

/// Named models resolve through the registry and evaluate exactly like
/// their inline equivalents.
#[test]
fn named_models_match_inline_requests() {
    let server = Server::start(
        ServeConfig {
            shards: 1,
            batch_width: 1,
            ..ServeConfig::default()
        },
        &[Bind::Tcp("127.0.0.1:0".into())],
        None,
    )
    .unwrap();
    let mut client = ServeClient::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();

    let spec = pipeline(4, 100, 3, 0);
    let loaded = client
        .call(&Request::Load {
            name: "p4".into(),
            spec: spec.clone(),
        })
        .unwrap();
    assert_eq!(loaded, Response::Loaded { name: "p4".into() });

    let trace = generated(8, 0x1234);
    let named = expect_ok(
        client
            .call(&Request::Eval(EvalRequest {
                id: 1,
                model: ModelRef::Named("p4".into()),
                trace: trace.clone(),
            }))
            .unwrap(),
    );
    let (outputs, acks) = reference(&spec, &trace);
    assert_eq!(named.outputs, outputs);
    assert_eq!(named.input_acks, acks);

    let missing = client
        .call(&Request::Eval(EvalRequest {
            id: 2,
            model: ModelRef::Named("absent".into()),
            trace,
        }))
        .unwrap();
    assert!(matches!(missing, Response::Error { id: 2, .. }));
    server.shutdown_and_join();
}

/// A wide padded model on the partitioned backend, served with intra-graph
/// workers enabled, round-trips the new wire tags, stays bitwise identical
/// to the serial scalar reference, and actually engages the parallel sweep
/// (the graph is above `min_nodes`, so the daemon's partition counters
/// must move).
#[test]
fn partitioned_wide_models_match_scalar_reference() {
    let config = ServeConfig {
        shards: 1,
        batch_width: 2,
        max_batch_delay: Duration::from_millis(5),
        partition_threads: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(
        config,
        &[Bind::Tcp("127.0.0.1:0".into())],
        Some("127.0.0.1:0"),
    )
    .unwrap();
    let mut client = ServeClient::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();

    let spec = ModelSpec {
        kind: ModelKind::WidePipeline {
            stages: 4,
            base: 100,
            per_unit: 3,
            chains: 32,
        },
        padding: 4_500,
        backend: EvalBackend::CompiledParallel,
    };
    let trace = generated(24, 0xbeef);
    let ok = expect_ok(client.call(&eval(9, &spec, &trace)).unwrap());
    assert!(
        !ok.batched,
        "partitioned lanes eject from lockstep batching"
    );
    let (outputs, acks) = reference(&spec, &trace);
    assert_eq!(ok.outputs, outputs);
    assert_eq!(ok.input_acks, acks);

    let metrics = http_get(&server.metrics_addr().unwrap().to_string(), "/metrics");
    let parallel_iterations = metrics
        .lines()
        .find_map(|l| l.strip_prefix("evolve_partition_parallel_iterations_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("partition family exported");
    assert!(
        parallel_iterations > 0,
        "served evaluation never took the partitioned sweep"
    );
    server.shutdown_and_join();
}

fn http_get(addr: &str, path: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn spec_strategy() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        (1usize..4, 0usize..2, any::<bool>()).prop_map(|(stages, pad, worklist)| ModelSpec {
            kind: ModelKind::Didactic { stages },
            padding: pad * 32,
            backend: if worklist {
                EvalBackend::Worklist
            } else {
                EvalBackend::Compiled
            },
        }),
        (2usize..6, 40u64..120, 1u64..5, 0usize..2).prop_map(|(stages, base, per_unit, pad)| {
            ModelSpec {
                kind: ModelKind::Pipeline {
                    stages,
                    base,
                    per_unit,
                },
                padding: pad * 16,
                backend: EvalBackend::Compiled,
            }
        }),
    ]
}

fn trace_strategy() -> impl Strategy<Value = TracePayload> {
    prop_oneof![
        (1u64..16, 1u64..64, 0u64..600, any::<u64>()).prop_map(
            |(tokens, size, period, seed)| TracePayload::Generated(TraceSpec {
                tokens,
                min_size: 1,
                max_size: size.max(1),
                mean_period: period,
                seed,
            })
        ),
        proptest::collection::vec((0u64..4000, 1u64..64), 0..12)
            .prop_map(TracePayload::Offers),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random request streams — mixed models, mixed traces, pipelined on
    /// one connection so affinity groups form and dissolve arbitrarily —
    /// always come back bitwise identical to the scalar reference.
    #[test]
    fn random_streams_match_scalar_reference(
        requests in proptest::collection::vec((spec_strategy(), trace_strategy()), 1..10)
    ) {
        let config = ServeConfig {
            shards: 1,
            batch_width: 3,
            max_batch_delay: Duration::from_millis(2),
            ..ServeConfig::default()
        };
        let server = Server::start(config, &[Bind::Tcp("127.0.0.1:0".into())], None).unwrap();
        let mut client =
            ServeClient::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
        for (i, (spec, trace)) in requests.iter().enumerate() {
            client.send(&eval(i as u64, spec, trace)).unwrap();
        }
        let mut by_id = HashMap::new();
        for _ in 0..requests.len() {
            let ok = expect_ok(client.recv().unwrap());
            by_id.insert(ok.id, ok);
        }
        server.shutdown_and_join();
        for (i, (spec, trace)) in requests.iter().enumerate() {
            let ok = &by_id[&(i as u64)];
            let (outputs, acks) = reference(spec, trace);
            prop_assert_eq!(&ok.outputs, &outputs, "request {} outputs diverged", i);
            prop_assert_eq!(&ok.input_acks, &acks, "request {} acks diverged", i);
        }
    }
}
