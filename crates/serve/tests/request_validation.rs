//! Admission validation: wire-supplied specs and traces that would
//! panic a shard (`build()` asserts on zero stages) or allocate without
//! bound (huge generated traces, giant model graphs) are refused with a
//! typed error at admission — the daemon stays fully serviceable.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use evolve_core::EvalBackend;
use evolve_explore::{ModelKind, ModelSpec, TraceSpec};
use evolve_serve::{
    encode_request, Bind, EvalRequest, ModelRef, Request, Response, ServeClient, ServeConfig,
    Server, TracePayload,
};

fn didactic(stages: usize, padding: usize) -> ModelSpec {
    ModelSpec {
        kind: ModelKind::Didactic { stages },
        padding,
        backend: EvalBackend::Compiled,
    }
}

fn generated(tokens: u64) -> TracePayload {
    TracePayload::Generated(TraceSpec {
        tokens,
        min_size: 1,
        max_size: 4,
        mean_period: 50,
        seed: 7,
    })
}

fn eval(id: u64, model: ModelRef, trace: TracePayload) -> Request {
    Request::Eval(EvalRequest { id, model, trace })
}

fn start_single_shard() -> (Server, String) {
    let server = Server::start(
        ServeConfig {
            shards: 1,
            batch_width: 1,
            ..ServeConfig::default()
        },
        &[Bind::Tcp("127.0.0.1:0".into())],
        None,
    )
    .unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    (server, addr)
}

/// A zero-stage inline spec must not reach `spec.build()` (which would
/// assert and kill the shard thread): it gets a typed error, and the
/// same shard still answers a valid evaluation afterwards.
#[test]
fn zero_stage_spec_rejected_and_shard_survives() {
    let (server, addr) = start_single_shard();
    let mut client = ServeClient::connect_tcp(&addr).unwrap();

    let resp = client
        .call(&eval(1, ModelRef::Inline(didactic(0, 0)), generated(4)))
        .unwrap();
    assert!(
        matches!(&resp, Response::Error { id: 1, message } if message.contains("stage")),
        "expected stage validation error, got {resp:?}"
    );

    // The shard that would have died still serves this.
    let resp = client
        .call(&eval(2, ModelRef::Inline(didactic(2, 0)), generated(4)))
        .unwrap();
    assert!(
        matches!(resp, Response::EvalOk(ref ok) if ok.id == 2),
        "expected EvalOk after rejection, got {resp:?}"
    );
    server.shutdown_and_join();
}

/// A generated trace claiming `u64::MAX` tokens is refused before any
/// arrivals are materialised — a ~60-byte frame must not be able to
/// allocate without bound.
#[test]
fn huge_generated_trace_rejected_before_materialisation() {
    let (server, addr) = start_single_shard();
    let mut client = ServeClient::connect_tcp(&addr).unwrap();

    let resp = client
        .call(&eval(3, ModelRef::Inline(didactic(2, 0)), generated(u64::MAX)))
        .unwrap();
    assert!(
        matches!(&resp, Response::Error { id: 3, message } if message.contains("tokens")),
        "expected trace cap error, got {resp:?}"
    );
    server.shutdown_and_join();
}

/// Oversized model dimensions (stages or padding beyond the caps) are
/// refused at admission, for inline specs and `Load` alike.
#[test]
fn oversized_model_dimensions_rejected() {
    let (server, addr) = start_single_shard();
    let mut client = ServeClient::connect_tcp(&addr).unwrap();

    let giant_stages = didactic(u32::MAX as usize, 0);
    let resp = client
        .call(&eval(4, ModelRef::Inline(giant_stages.clone()), generated(4)))
        .unwrap();
    assert!(
        matches!(&resp, Response::Error { id: 4, message } if message.contains("stages")),
        "expected stages cap error, got {resp:?}"
    );

    let giant_padding = didactic(2, u32::MAX as usize);
    let resp = client
        .call(&eval(5, ModelRef::Inline(giant_padding), generated(4)))
        .unwrap();
    assert!(
        matches!(&resp, Response::Error { id: 5, message } if message.contains("padding")),
        "expected padding cap error, got {resp:?}"
    );

    let resp = client
        .call(&Request::Load {
            name: "giant".to_string(),
            spec: giant_stages,
        })
        .unwrap();
    assert!(
        matches!(resp, Response::Error { id: 0, .. }),
        "expected load rejection, got {resp:?}"
    );
    // The invalid spec must not have been registered.
    let resp = client
        .call(&eval(6, ModelRef::Named("giant".to_string()), generated(4)))
        .unwrap();
    assert!(
        matches!(&resp, Response::Error { id: 6, message } if message.contains("unknown model")),
        "expected unknown-model error, got {resp:?}"
    );
    server.shutdown_and_join();
}

/// Beyond `max_connections` a new connection is refused with a typed
/// error and closed; once established connections go away their reader
/// handles are reaped and new connections are admitted again.
#[test]
fn connection_cap_refuses_then_reaps() {
    let server = Server::start(
        ServeConfig {
            shards: 1,
            batch_width: 1,
            max_connections: 1,
            ..ServeConfig::default()
        },
        &[Bind::Tcp("127.0.0.1:0".into())],
        None,
    )
    .unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    let mut first = ServeClient::connect_tcp(&addr).unwrap();
    let pong = first.call(&Request::Ping { nonce: 1 }).unwrap();
    assert_eq!(pong, Response::Pong { nonce: 1 });

    // Second connection: refused with a typed error frame (written
    // unprompted at accept time), then closed.
    let mut second = TcpStream::connect(&addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let frame = evolve_serve::protocol::read_frame(&mut second, 8 * 1024 * 1024)
        .unwrap()
        .expect("refusal frame expected");
    let resp = evolve_serve::decode_response(&frame).unwrap();
    assert!(
        matches!(&resp, Response::Error { id: 0, message } if message.contains("connection limit")),
        "expected connection-limit error, got {resp:?}"
    );

    // Free the slot; the finished reader is reaped on a later accept.
    drop(first);
    drop(second);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = ServeClient::connect_tcp(&addr).unwrap();
        match retry.call(&Request::Ping { nonce: 3 }) {
            Ok(Response::Pong { nonce: 3 }) => break,
            _ if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50))
            }
            other => panic!("connection slot never reaped: {other:?}"),
        }
    }
    server.shutdown_and_join();
}

/// A peer that streams bytes continuously (so the reader never hits its
/// read-timeout arm) must not delay graceful shutdown: the hot read
/// path re-checks the shutdown flag.
#[test]
fn shutdown_drains_despite_continuously_streaming_peer() {
    let server = Server::start(
        ServeConfig {
            shards: 1,
            batch_width: 1,
            // The flood never reads its responses, so response writes to
            // it will time out; keep that bound short for the test.
            write_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        },
        &[Bind::Tcp("127.0.0.1:0".into())],
        None,
    )
    .unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flood_stop = std::sync::Arc::clone(&stop);
    let flood_addr = addr.clone();
    let flood = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(&flood_addr).unwrap();
        let ping = encode_request(&Request::Ping { nonce: 0 });
        let mut frame = (ping.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&ping);
        // Keep the daemon's Ok(n) read arm hot until told to stop (or
        // until the draining server closes the socket under us).
        while !flood_stop.load(std::sync::atomic::Ordering::SeqCst) {
            if conn.write_all(&frame).is_err() {
                break;
            }
        }
    });

    // Give the flood time to get established, then require a prompt
    // drain despite it.
    std::thread::sleep(Duration::from_millis(100));
    let begun = Instant::now();
    server.shutdown_and_join();
    assert!(
        begun.elapsed() < Duration::from_secs(10),
        "shutdown stalled behind a streaming peer: {:?}",
        begun.elapsed()
    );
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    flood.join().unwrap();
}
