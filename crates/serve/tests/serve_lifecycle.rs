//! Daemon lifecycle: admission-control load shedding, graceful SIGTERM
//! drain of in-flight batches, and the live `/metrics` listener.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use evolve_core::EvalBackend;
use evolve_explore::{ModelKind, ModelSpec, TraceSpec};
use evolve_serve::{
    Bind, EvalRequest, ModelRef, Request, Response, ServeClient, ServeConfig, Server,
    TracePayload,
};

#[allow(unsafe_code)]
mod sys {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }

    pub fn sigterm(pid: u32) {
        // SAFETY: plain kill(2) on a child this test spawned.
        unsafe {
            kill(pid as i32, 15);
        }
    }

    pub fn sigusr1(pid: u32) {
        // SAFETY: as above.
        unsafe {
            kill(pid as i32, 10);
        }
    }
}

fn spec() -> ModelSpec {
    ModelSpec {
        kind: ModelKind::Pipeline {
            stages: 4,
            base: 100,
            per_unit: 3,
        },
        padding: 0,
        backend: EvalBackend::Compiled,
    }
}

fn eval(id: u64) -> Request {
    Request::Eval(EvalRequest {
        id,
        model: ModelRef::Inline(spec()),
        trace: TracePayload::Generated(TraceSpec {
            tokens: 8,
            min_size: 1,
            max_size: 64,
            mean_period: 300,
            seed: 0x100 + id,
        }),
    })
}

/// Beyond `max_queue_depth` pending requests the daemon sheds load with
/// BUSY instead of queueing; the admitted requests still drain to
/// completion at shutdown.
#[test]
fn overload_sheds_busy_and_drains_admitted_requests() {
    let server = Server::start(
        ServeConfig {
            shards: 1,
            batch_width: 8,
            max_batch_delay: Duration::from_secs(30),
            max_queue_depth: 3,
            ..ServeConfig::default()
        },
        &[Bind::Tcp("127.0.0.1:0".into())],
        None,
    )
    .unwrap();
    let mut client = ServeClient::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();

    // Five pipelined requests against depth 3: the batch (width 8, 30 s
    // deadline) cannot dispatch, so exactly two are shed.
    for id in 0..5 {
        client.send(&eval(id)).unwrap();
    }
    let busy_a = client.recv().unwrap();
    let busy_b = client.recv().unwrap();
    assert_eq!(busy_a, Response::Busy { id: 3 });
    assert_eq!(busy_b, Response::Busy { id: 4 });
    assert_eq!(server.rejected(), 2);

    // Graceful shutdown answers every admitted request.
    server.shutdown_and_join();
    let mut drained = Vec::new();
    for _ in 0..3 {
        match client.recv().unwrap() {
            Response::EvalOk(ok) => drained.push(ok.id),
            other => panic!("expected a drained EvalOk, got {other:?}"),
        }
    }
    drained.sort_unstable();
    assert_eq!(drained, vec![0, 1, 2]);
    assert!(client.recv().is_err(), "connection should close after drain");
}

/// The `/metrics` listener serves a parsable Prometheus exposition with
/// the serve counter families, folded across shards.
#[test]
fn metrics_listener_serves_prometheus_text() {
    let server = Server::start(
        ServeConfig {
            shards: 2,
            batch_width: 1,
            ..ServeConfig::default()
        },
        &[Bind::Tcp("127.0.0.1:0".into())],
        Some("127.0.0.1:0"),
    )
    .unwrap();
    let mut client = ServeClient::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
    for id in 0..4 {
        match client.call(&eval(id)).unwrap() {
            Response::EvalOk(_) => {}
            other => panic!("expected EvalOk, got {other:?}"),
        }
    }

    let metrics_addr = server.metrics_addr().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let body = loop {
        let body = http_get(&metrics_addr.to_string(), "/metrics");
        if body.contains("evolve_serve_requests_total 4") || Instant::now() > deadline {
            break body;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(body.contains("# TYPE evolve_serve_requests_total counter"));
    assert!(body.contains("evolve_serve_requests_total 4"));
    assert!(body.contains("evolve_serve_responses_total 4"));
    assert!(body.contains("evolve_serve_rejected_total 0"));
    assert!(body.contains("evolve_serve_connections_total 1"));
    assert!(body.contains(r#"evolve_serve_lanes_total{path="scalar"}"#));
    // Engine families flow through the same exposition.
    assert!(body.contains("evolve_engine_nodes_computed_total"));
    // Live gauges, identity, and the flight-recorder phase histograms.
    assert!(body.contains("evolve_serve_queue_depth "));
    assert!(body.contains("evolve_serve_connections 1"));
    assert!(body.contains("# TYPE evolve_build_info gauge"));
    assert!(body.contains("evolve_uptime_seconds "));
    assert!(body.contains("# TYPE evolve_serve_phase_seconds histogram"));
    assert!(body.contains("evolve_serve_phase_seconds_count{phase=\"eval\"} "));

    let missing = http_get(&metrics_addr.to_string(), "/nope");
    assert!(missing.contains("not found"));
    server.shutdown_and_join();
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("metrics listener reachable");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn wait_for_state(path: &PathBuf, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(state) = std::fs::read_to_string(path) {
            if state.contains("pid=") {
                return state;
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("evolved exited early: {status}");
        }
        assert!(Instant::now() < deadline, "state file never appeared");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// SIGTERM on the real daemon binary drains in-flight batches — every
/// admitted request is answered — and the process exits 0.
#[test]
fn sigterm_drains_in_flight_batches_and_exits_zero() {
    let dir = std::env::temp_dir().join(format!("evolved-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("evolved.sock");
    let state = dir.join("evolved.state");
    let _ = std::fs::remove_file(&state);

    let mut child = Command::new(env!("CARGO_BIN_EXE_evolved"))
        .args([
            "--unix",
            socket.to_str().unwrap(),
            "--shards",
            "1",
            "--batch-width",
            "8",
            "--max-batch-delay-us",
            "30000000",
            "--state-file",
            state.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn evolved");
    wait_for_state(&state, &mut child);

    let mut client = ServeClient::connect_unix(&socket).unwrap();
    // Three pipelined requests parked behind a 30 s batching deadline:
    // only the drain can answer them.
    for id in 0..3 {
        client.send(&eval(id)).unwrap();
    }
    std::thread::sleep(Duration::from_millis(300));
    sys::sigterm(child.id());

    let mut drained = Vec::new();
    for _ in 0..3 {
        match client.recv().expect("drained response") {
            Response::EvalOk(ok) => drained.push(ok.id),
            other => panic!("expected a drained EvalOk, got {other:?}"),
        }
    }
    drained.sort_unstable();
    assert_eq!(drained, vec![0, 1, 2]);

    let status = child.wait().unwrap();
    assert!(status.success(), "evolved should exit 0, got {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGUSR1 on the real daemon binary dumps the flight recorder to the
/// `--trace-out` path without disturbing service, and shutdown writes a
/// final dump.
#[cfg(target_os = "linux")]
#[test]
fn sigusr1_dumps_flight_recorder_to_trace_out() {
    let dir = std::env::temp_dir().join(format!("evolved-usr1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("evolved.sock");
    let state = dir.join("evolved.state");
    let trace = dir.join("trace.json");

    let mut child = Command::new(env!("CARGO_BIN_EXE_evolved"))
        .args([
            "--unix",
            socket.to_str().unwrap(),
            "--shards",
            "1",
            "--state-file",
            state.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn evolved");
    wait_for_state(&state, &mut child);

    let mut client = ServeClient::connect_unix(&socket).unwrap();
    for id in 0..3 {
        match client.call(&eval(id)).unwrap() {
            Response::EvalOk(_) => {}
            other => panic!("expected EvalOk, got {other:?}"),
        }
    }

    sys::sigusr1(child.id());
    let deadline = Instant::now() + Duration::from_secs(10);
    let dumped = loop {
        if let Ok(body) = std::fs::read_to_string(&trace) {
            break body;
        }
        assert!(Instant::now() < deadline, "SIGUSR1 never produced a trace dump");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(evolve_obs::json::parses(&dumped), "dumped trace is not valid JSON");
    assert!(dumped.contains("\"name\":\"eval\""), "dump has no eval spans");

    // Service is undisturbed after the dump.
    match client.call(&eval(99)).unwrap() {
        Response::EvalOk(ok) => assert_eq!(ok.id, 99),
        other => panic!("post-dump eval failed: {other:?}"),
    }

    sys::sigterm(child.id());
    let status = child.wait().unwrap();
    assert!(status.success(), "evolved should exit 0, got {status}");
    let final_dump = std::fs::read_to_string(&trace).expect("shutdown trace dump");
    assert!(evolve_obs::json::parses(&final_dump));
    let _ = std::fs::remove_dir_all(&dir);
}
