//! Evaluation-as-a-service for the evolve engine stack.
//!
//! The paper's dynamic computation method makes one evaluation cheap;
//! this crate makes *many concurrent* evaluations cheap. `evolved` is a
//! long-running daemon speaking a length-prefixed binary protocol
//! ([`protocol`]) over TCP and unix sockets, built entirely on
//! std-library networking (the workspace is offline — no async
//! runtime):
//!
//! - **thread-per-core shards** ([`Server`]): connections are assigned
//!   round-robin to shard workers, each owning its engine caches
//!   (`evolve_explore::cache`) outright — no locks on the evaluation
//!   path;
//! - **ModelSpec-affinity continuous batching**: a shard groups pending
//!   requests by exact model spec and dispatches a group the moment it
//!   fills the SIMD chunk width — or at the
//!   [`max_batch_delay`](ServeConfig::max_batch_delay) deadline when
//!   underfull — through the same `drive_prepared_batch` path the sweep
//!   uses, so daemon and sweep share one batching implementation;
//! - **cross-request delta chaining**: scalar-path requests of the same
//!   structural family attach the first request's captured
//!   [`DeltaCache`](evolve_core::DeltaCache) and propagate only their
//!   change frontier;
//! - **admission control**: beyond
//!   [`max_queue_depth`](ServeConfig::max_queue_depth) pending requests
//!   a shard sheds load with a typed BUSY response instead of queueing
//!   without bound;
//! - **live telemetry**: per-shard [`TelemetrySink`](evolve_obs::TelemetrySink)
//!   snapshots are folded by a dedicated `/metrics` listener into one
//!   Prometheus text exposition.
//!
//! Responses are bitwise identical to a fresh scalar
//! [`Engine`](evolve_core::Engine) evaluation regardless of which path
//! (batched, ejected-scalar, delta-attached) served them — the
//! conformance suite pins this down. `docs/SERVING.md` documents the
//! wire protocol and tuning knobs.

#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod client;
pub mod net;
pub mod protocol;
pub mod server;
mod shard;
pub mod signal;

pub use client::{ClientError, ServeClient};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, EvalRequest, EvalResponse,
    FrameError, FrameReader, ModelRef, Request, Response, TracePayload, WireError,
};
pub use server::{default_models, Bind, ServeConfig, Server};
