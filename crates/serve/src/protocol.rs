//! Length-prefixed binary wire protocol for the `evolved` daemon.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload
//! length followed by that many payload bytes. The payload starts with a
//! one-byte tag selecting the message, then tag-specific fields in
//! little-endian fixed-width encoding. Strings are a `u32` byte length
//! plus UTF-8 bytes; vectors are a `u32` element count plus packed
//! elements.
//!
//! The decoder is hardened against adversarial input: the length prefix
//! is validated against [`FrameReader::new`]'s cap *before* any
//! allocation ([`FrameError::Oversize`]), element counts are checked
//! against the bytes actually present before reserving
//! ([`WireError::TooLong`]), and every read is bounds-checked — malformed
//! payloads surface typed errors, never panics.

use std::fmt;
use std::io::{self, Read, Write};

use evolve_explore::{ModelKind, ModelSpec, TraceSpec};
use evolve_model::Arrival;

use evolve_core::EvalBackend;
use evolve_des::Time;

/// Default cap on a single frame's payload length (8 MiB).
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Errors surfaced while framing or de-framing the byte stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer disconnected in the middle of a frame.
    Truncated,
    /// The length prefix exceeds the configured cap; rejected before any
    /// buffer allocation.
    Oversize {
        /// Length the prefix claimed.
        len: u64,
        /// Configured maximum payload length.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Truncated => write!(f, "peer disconnected mid-frame"),
            FrameError::Oversize { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Errors surfaced while decoding a frame payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    UnexpectedEof,
    /// An unknown message or variant tag.
    UnknownTag(u8),
    /// A string field was not valid UTF-8.
    Utf8,
    /// Bytes remained after the message was fully decoded.
    Trailing,
    /// A declared element count cannot fit in the bytes remaining;
    /// rejected before any allocation.
    TooLong {
        /// Declared element count.
        count: u64,
        /// Payload bytes remaining when the count was read.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "payload truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown tag {t:#04x}"),
            WireError::Utf8 => write!(f, "string field is not UTF-8"),
            WireError::Trailing => write!(f, "trailing bytes after message"),
            WireError::TooLong { count, remaining } => {
                write!(f, "count {count} exceeds {remaining} remaining bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// How an evaluation request names its model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelRef {
    /// The full model spec travels inline with the request.
    Inline(ModelSpec),
    /// Refers to a model preloaded (or [`Request::Load`]ed) by name.
    Named(String),
}

/// How an evaluation request supplies its input trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TracePayload {
    /// Deterministically generated from a [`TraceSpec`] seed.
    Generated(TraceSpec),
    /// Explicit streamed `(offer instant, token size)` pairs; instants
    /// must be non-decreasing.
    Offers(Vec<(u64, u64)>),
}

impl TracePayload {
    /// Materialises the arrival schedule this payload describes.
    ///
    /// Out-of-order explicit offers are clamped monotone (each instant is
    /// at least its predecessor's) rather than rejected, so a hostile
    /// trace cannot trip the stimulus sort assertion server-side.
    pub fn arrivals(&self) -> Vec<Arrival> {
        match self {
            TracePayload::Generated(spec) => spec.stimulus().arrivals().to_vec(),
            TracePayload::Offers(offers) => {
                let mut floor = 0u64;
                offers
                    .iter()
                    .map(|&(at, size)| {
                        floor = floor.max(at);
                        Arrival {
                            at: Time::from_ticks(floor),
                            size,
                        }
                    })
                    .collect()
            }
        }
    }
}

/// One evaluation request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalRequest {
    /// Client-chosen correlation id echoed on the response. Responses on
    /// a pipelined connection arrive in completion order, not submission
    /// order.
    pub id: u64,
    /// The model to evaluate.
    pub model: ModelRef,
    /// The input trace to drive through it.
    pub trace: TracePayload,
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Evaluate a trace against a model (tag `0x01`).
    Eval(EvalRequest),
    /// Register a named model for later [`ModelRef::Named`] requests
    /// (tag `0x02`).
    Load {
        /// Registry name.
        name: String,
        /// The spec to register.
        spec: ModelSpec,
    },
    /// Liveness probe (tag `0x03`).
    Ping {
        /// Echoed on the [`Response::Pong`].
        nonce: u64,
    },
    /// Dump the flight recorder as Chrome trace JSON (tag `0x04`).
    Dump,
}

/// Evaluation result payload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalResponse {
    /// Correlation id from the request.
    pub id: u64,
    /// Per-token `(arrival, start, completion)` output instants.
    pub outputs: Vec<(u64, u64, u64)>,
    /// Input acknowledgement instants, one per offered token.
    pub input_acks: Vec<u64>,
    /// Engine work counters: nodes computed, arcs evaluated, iterations
    /// completed, lanes evaluated, batched iterations.
    pub engine: [u64; 5],
    /// Fast-forward counters: promotions, demotions, fast-forwarded
    /// iterations.
    pub ff: [u64; 3],
    /// Whether this lane evaluated against a delta base cache.
    pub delta_attached: bool,
    /// Delta counters: calls delta, calls full, nodes reused, nodes
    /// recomputed, nodes settled, frontier collapses.
    pub delta: [u64; 6],
    /// Whether this lane ran inside a lockstep batch.
    pub batched: bool,
    /// Lanes in the dispatch group this request was served with.
    pub lanes_in_batch: u32,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Evaluation finished (tag `0x81`).
    EvalOk(EvalResponse),
    /// Shed by admission control: the shard queue is at
    /// `max_queue_depth` (tag `0x82`).
    Busy {
        /// Correlation id from the request.
        id: u64,
    },
    /// The request failed (tag `0x83`).
    Error {
        /// Correlation id from the request (0 when the request could not
        /// be decoded far enough to learn it).
        id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// Liveness reply (tag `0x84`).
    Pong {
        /// Nonce from the [`Request::Ping`].
        nonce: u64,
    },
    /// The named model was registered (tag `0x85`).
    Loaded {
        /// Registry name from the [`Request::Load`].
        name: String,
    },
    /// Flight-recorder dump (tag `0x86`): a Perfetto-loadable Chrome
    /// trace JSON document. An empty `traceEvents` document when the
    /// daemon runs with the recorder disabled.
    Trace {
        /// The rendered trace document.
        json: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_model(buf: &mut Vec<u8>, spec: &ModelSpec) {
    match spec.kind {
        ModelKind::Didactic { stages } => {
            put_u8(buf, 0);
            put_u32(buf, stages as u32);
        }
        ModelKind::Pipeline {
            stages,
            base,
            per_unit,
        } => {
            put_u8(buf, 1);
            put_u32(buf, stages as u32);
            put_u64(buf, base);
            put_u64(buf, per_unit);
        }
        ModelKind::WidePipeline {
            stages,
            base,
            per_unit,
            chains,
        } => {
            put_u8(buf, 2);
            put_u32(buf, stages as u32);
            put_u64(buf, base);
            put_u64(buf, per_unit);
            put_u32(buf, chains as u32);
        }
    }
    put_u32(buf, spec.padding as u32);
    put_u8(buf, match spec.backend {
        EvalBackend::Compiled => 0,
        EvalBackend::Worklist => 1,
        EvalBackend::CompiledParallel => 2,
    });
}

/// Serialises a request into a frame payload (without the length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Eval(eval) => {
            put_u8(&mut buf, 0x01);
            put_u64(&mut buf, eval.id);
            match &eval.model {
                ModelRef::Inline(spec) => {
                    put_u8(&mut buf, 0);
                    put_model(&mut buf, spec);
                }
                ModelRef::Named(name) => {
                    put_u8(&mut buf, 1);
                    put_str(&mut buf, name);
                }
            }
            match &eval.trace {
                TracePayload::Generated(t) => {
                    put_u8(&mut buf, 0);
                    for v in [t.tokens, t.min_size, t.max_size, t.mean_period, t.seed] {
                        put_u64(&mut buf, v);
                    }
                }
                TracePayload::Offers(offers) => {
                    put_u8(&mut buf, 1);
                    put_u32(&mut buf, offers.len() as u32);
                    for &(at, size) in offers {
                        put_u64(&mut buf, at);
                        put_u64(&mut buf, size);
                    }
                }
            }
        }
        Request::Load { name, spec } => {
            put_u8(&mut buf, 0x02);
            put_str(&mut buf, name);
            put_model(&mut buf, spec);
        }
        Request::Ping { nonce } => {
            put_u8(&mut buf, 0x03);
            put_u64(&mut buf, *nonce);
        }
        Request::Dump => {
            put_u8(&mut buf, 0x04);
        }
    }
    buf
}

/// Serialises a response into a frame payload (without the length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::EvalOk(ok) => {
            put_u8(&mut buf, 0x81);
            put_u64(&mut buf, ok.id);
            put_u32(&mut buf, ok.outputs.len() as u32);
            for &(a, s, c) in &ok.outputs {
                put_u64(&mut buf, a);
                put_u64(&mut buf, s);
                put_u64(&mut buf, c);
            }
            put_u32(&mut buf, ok.input_acks.len() as u32);
            for &ack in &ok.input_acks {
                put_u64(&mut buf, ack);
            }
            for v in ok.engine {
                put_u64(&mut buf, v);
            }
            for v in ok.ff {
                put_u64(&mut buf, v);
            }
            put_u8(&mut buf, u8::from(ok.delta_attached));
            for v in ok.delta {
                put_u64(&mut buf, v);
            }
            put_u8(&mut buf, u8::from(ok.batched));
            put_u32(&mut buf, ok.lanes_in_batch);
        }
        Response::Busy { id } => {
            put_u8(&mut buf, 0x82);
            put_u64(&mut buf, *id);
        }
        Response::Error { id, message } => {
            put_u8(&mut buf, 0x83);
            put_u64(&mut buf, *id);
            put_str(&mut buf, message);
        }
        Response::Pong { nonce } => {
            put_u8(&mut buf, 0x84);
            put_u64(&mut buf, *nonce);
        }
        Response::Loaded { name } => {
            put_u8(&mut buf, 0x85);
            put_str(&mut buf, name);
        }
        Response::Trace { json } => {
            put_u8(&mut buf, 0x86);
            put_str(&mut buf, json);
        }
    }
    buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Validates `count` elements of `elem_size` bytes fit in the
    /// remaining payload, so a hostile count cannot force a huge
    /// allocation.
    fn count(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let count = self.u32()? as u64;
        let need = count.checked_mul(elem_size as u64);
        match need {
            Some(need) if need <= self.remaining() as u64 => Ok(count as usize),
            _ => Err(WireError::TooLong {
                count,
                remaining: self.remaining(),
            }),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Utf8)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }

    fn model(&mut self) -> Result<ModelSpec, WireError> {
        let kind = match self.u8()? {
            0 => ModelKind::Didactic {
                stages: self.u32()? as usize,
            },
            1 => ModelKind::Pipeline {
                stages: self.u32()? as usize,
                base: self.u64()?,
                per_unit: self.u64()?,
            },
            2 => ModelKind::WidePipeline {
                stages: self.u32()? as usize,
                base: self.u64()?,
                per_unit: self.u64()?,
                chains: self.u32()? as usize,
            },
            t => return Err(WireError::UnknownTag(t)),
        };
        let padding = self.u32()? as usize;
        let backend = match self.u8()? {
            0 => EvalBackend::Compiled,
            1 => EvalBackend::Worklist,
            2 => EvalBackend::CompiledParallel,
            t => return Err(WireError::UnknownTag(t)),
        };
        Ok(ModelSpec {
            kind,
            padding,
            backend,
        })
    }
}

/// Decodes a request payload.
///
/// # Errors
///
/// Returns a [`WireError`] for any malformed payload; never panics.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        0x01 => {
            let id = c.u64()?;
            let model = match c.u8()? {
                0 => ModelRef::Inline(c.model()?),
                1 => ModelRef::Named(c.string()?),
                t => return Err(WireError::UnknownTag(t)),
            };
            let trace = match c.u8()? {
                0 => TracePayload::Generated(TraceSpec {
                    tokens: c.u64()?,
                    min_size: c.u64()?,
                    max_size: c.u64()?,
                    mean_period: c.u64()?,
                    seed: c.u64()?,
                }),
                1 => {
                    let count = c.count(16)?;
                    let mut offers = Vec::with_capacity(count);
                    for _ in 0..count {
                        offers.push((c.u64()?, c.u64()?));
                    }
                    TracePayload::Offers(offers)
                }
                t => return Err(WireError::UnknownTag(t)),
            };
            Request::Eval(EvalRequest { id, model, trace })
        }
        0x02 => Request::Load {
            name: c.string()?,
            spec: c.model()?,
        },
        0x03 => Request::Ping { nonce: c.u64()? },
        0x04 => Request::Dump,
        t => return Err(WireError::UnknownTag(t)),
    };
    c.finish()?;
    Ok(req)
}

/// Decodes a response payload.
///
/// # Errors
///
/// Returns a [`WireError`] for any malformed payload; never panics.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        0x81 => {
            let id = c.u64()?;
            let count = c.count(24)?;
            let mut outputs = Vec::with_capacity(count);
            for _ in 0..count {
                outputs.push((c.u64()?, c.u64()?, c.u64()?));
            }
            let count = c.count(8)?;
            let mut input_acks = Vec::with_capacity(count);
            for _ in 0..count {
                input_acks.push(c.u64()?);
            }
            let mut engine = [0u64; 5];
            for v in &mut engine {
                *v = c.u64()?;
            }
            let mut ff = [0u64; 3];
            for v in &mut ff {
                *v = c.u64()?;
            }
            let delta_attached = c.u8()? != 0;
            let mut delta = [0u64; 6];
            for v in &mut delta {
                *v = c.u64()?;
            }
            let batched = c.u8()? != 0;
            let lanes_in_batch = c.u32()?;
            Response::EvalOk(EvalResponse {
                id,
                outputs,
                input_acks,
                engine,
                ff,
                delta_attached,
                delta,
                batched,
                lanes_in_batch,
            })
        }
        0x82 => Response::Busy { id: c.u64()? },
        0x83 => Response::Error {
            id: c.u64()?,
            message: c.string()?,
        },
        0x84 => Response::Pong { nonce: c.u64()? },
        0x85 => Response::Loaded { name: c.string()? },
        0x86 => Response::Trace { json: c.string()? },
        t => return Err(WireError::UnknownTag(t)),
    };
    c.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------------

/// Writes one frame (length prefix + payload) to `w`.
///
/// # Errors
///
/// Returns [`FrameError::Oversize`] when the payload exceeds `max`, or
/// [`FrameError::Io`] when the transport fails.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.len() > max {
        return Err(FrameError::Oversize {
            len: payload.len() as u64,
            max,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on clean end-of-stream (EOF exactly at a frame
/// boundary).
///
/// # Errors
///
/// [`FrameError::Truncated`] when the peer disconnects mid-frame,
/// [`FrameError::Oversize`] when the prefix exceeds `max` (checked
/// before the payload buffer is allocated), [`FrameError::Io`] on
/// transport failure.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max {
        return Err(FrameError::Oversize {
            len: len as u64,
            max,
        });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// Incremental de-framer for non-blocking reads: feed bytes as they
/// arrive with [`FrameReader::extend`], drain complete frames with
/// [`FrameReader::next_frame`].
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max: usize,
}

impl FrameReader {
    /// Creates a de-framer enforcing `max` payload bytes per frame.
    pub fn new(max: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            max,
        }
    }

    /// Appends freshly-read bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a partial frame is buffered (disconnecting now would be
    /// mid-frame).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Pops the next complete frame, or `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversize`] as soon as a length prefix exceeding the
    /// cap is visible — before any payload accumulates.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max {
            return Err(FrameError::Oversize {
                len: len as u64,
                max: self.max,
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}
