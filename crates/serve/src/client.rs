//! Blocking client for the `evolved` wire protocol.
//!
//! [`send`](ServeClient::send) and [`recv`](ServeClient::recv) are
//! separate so callers can pipeline: responses carry the request's
//! correlation id and arrive in completion order, not submission order.

use std::io;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::net::Conn;
use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, FrameError, Request, Response,
    WireError, DEFAULT_MAX_FRAME,
};

/// Client-side protocol failures.
#[derive(Debug)]
pub enum ClientError {
    /// Framing or transport failure.
    Frame(FrameError),
    /// The server sent a payload the client cannot decode.
    Wire(WireError),
    /// The server closed the connection at a frame boundary.
    Eof,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Wire(e) => write!(f, "undecodable response: {e}"),
            ClientError::Eof => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One connection to an `evolved` daemon.
#[derive(Debug)]
pub struct ServeClient {
    conn: Conn,
    max_frame: usize,
}

impl ServeClient {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_tcp(addr: &str) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient {
            conn: Conn::Tcp(stream),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Connects over a unix domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<ServeClient> {
        Ok(ServeClient {
            conn: Conn::Unix(UnixStream::connect(path)?),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Connects to a `tcp:HOST:PORT` or `unix:PATH` target string.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an unrecognised scheme; otherwise connect
    /// failures.
    pub fn connect(target: &str) -> io::Result<ServeClient> {
        if let Some(addr) = target.strip_prefix("tcp:") {
            ServeClient::connect_tcp(addr)
        } else if let Some(path) = target.strip_prefix("unix:") {
            ServeClient::connect_unix(path)
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("target must be tcp:ADDR or unix:PATH, got {target:?}"),
            ))
        }
    }

    /// Sends one request without waiting for the response.
    ///
    /// # Errors
    ///
    /// Framing or transport failures.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.conn, &encode_request(req), self.max_frame)?;
        Ok(())
    }

    /// Receives the next response, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// [`ClientError::Eof`] on clean server close, otherwise framing or
    /// decode failures.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.conn, self.max_frame)? {
            Some(payload) => decode_response(&payload).map_err(ClientError::Wire),
            None => Err(ClientError::Eof),
        }
    }

    /// Sends one request and waits for one response.
    ///
    /// Only correct on a connection with no other requests in flight
    /// (pipelined responses arrive in completion order).
    ///
    /// # Errors
    ///
    /// As [`send`](Self::send) and [`recv`](Self::recv).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }
}
