//! The `evolved` daemon: sharded accept loops, admission control, and
//! the live `/metrics` listener.
//!
//! Connections are assigned round-robin to shard workers
//! ([`crate::shard`]); each connection's requests all land on its shard,
//! so a client hammering one model keeps feeding the same affinity
//! group. Admission is a per-shard depth gauge: beyond
//! [`ServeConfig::max_queue_depth`] pending requests the daemon sheds
//! load with a [`Response::Busy`] instead of queueing without bound.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use evolve_core::{kernel, EvalBackend, FastForward, ParallelConfig, PeriodicConfig};
use evolve_explore::cache::EngineOptions;
use evolve_explore::{ModelKind, ModelSpec};
use evolve_obs::{prometheus, FlightRecorder, MetricsSnapshot, ServeGauges};

use crate::net::Conn;
use crate::protocol::{
    decode_request, encode_response, write_frame, FrameReader, ModelRef, Request, Response,
    TracePayload, DEFAULT_MAX_FRAME,
};
use crate::shard::{spawn_shard, Job, ShardHandle};

/// Tuning knobs of the daemon.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Shard worker threads (thread-per-core: one engine-cache-owning
    /// evaluation loop each).
    pub shards: usize,
    /// Lanes an affinity group accumulates before dispatching; defaults
    /// to the SIMD chunk width so full batches hit the chunked kernels.
    pub batch_width: usize,
    /// Longest a pending request waits for lane-mates: an underfull
    /// group launches at this deadline (continuous batching).
    pub max_batch_delay: Duration,
    /// Pending-request cap per shard; beyond it requests are shed with
    /// BUSY.
    pub max_queue_depth: usize,
    /// Per-frame payload cap, enforced before any allocation.
    pub max_frame_len: usize,
    /// Concurrent-connection cap across all listeners; a connection past
    /// it gets one typed error frame and is closed.
    pub max_connections: usize,
    /// Response write timeout (`SO_SNDTIMEO`): a client that stops
    /// reading is disconnected instead of blocking a shard on its full
    /// send buffer. `Duration::ZERO` disables the timeout.
    pub write_timeout: Duration,
    /// Cap on the arrivals a generated trace may materialise, enforced
    /// at admission before any allocation. Matches the ~512 Ki offers an
    /// explicit trace can carry in a default-cap frame.
    pub max_trace_tokens: u64,
    /// Cap on wire-supplied model stages (a model must also have at
    /// least one stage).
    pub max_model_stages: usize,
    /// Cap on wire-supplied padding nodes.
    pub max_model_padding: usize,
    /// Record full observation streams (slower; only needed when
    /// replaying per-resource timelines).
    pub record_observations: bool,
    /// Fast-forward promotion of periodic steady states.
    pub fast_forward: FastForward,
    /// Fast-forward confirmation window (periods).
    pub ff_confirm_periods: u64,
    /// Cross-request delta chaining on the scalar path.
    pub delta: bool,
    /// Baseline mode: a fresh engine per request, immediate dispatch, no
    /// caches — the strategy the affinity-batched path is measured
    /// against.
    pub naive: bool,
    /// Attach per-shard telemetry sinks (feeds `/metrics`).
    pub telemetry: bool,
    /// Partition workers for intra-graph parallel evaluation of scalar
    /// compiled lanes (`<= 1` = serial sweep, the default). Large ejected
    /// models sweep level-parallel; lockstep batches are unaffected.
    pub partition_threads: usize,
    /// Always-on request-lifecycle flight recorder (per-shard span rings
    /// + per-phase latency histograms). Disable to measure its cost.
    pub flight_recorder: bool,
    /// Spans each flight-recorder track retains before wrap-around
    /// eviction (rounded up to a power of two).
    pub flight_spans: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_width: kernel::CHUNK,
            max_batch_delay: Duration::from_millis(2),
            max_queue_depth: 1024,
            max_frame_len: DEFAULT_MAX_FRAME,
            max_connections: 1024,
            write_timeout: Duration::from_secs(5),
            max_trace_tokens: 1 << 19,
            max_model_stages: 4096,
            max_model_padding: 1 << 16,
            record_observations: false,
            fast_forward: FastForward::On,
            ff_confirm_periods: PeriodicConfig::default().confirm_periods,
            delta: true,
            naive: false,
            telemetry: true,
            partition_threads: 1,
            flight_recorder: true,
            flight_spans: 1024,
        }
    }
}

impl ServeConfig {
    pub(crate) fn engine_options(&self) -> EngineOptions {
        // The naive baseline shares every engine option: the measured
        // gap isolates serving strategy, not engine features.
        EngineOptions {
            record_observations: self.record_observations,
            fast_forward: self.fast_forward,
            ff_confirm_periods: self.ff_confirm_periods,
            // Shards already pin themselves to cores; partition workers
            // stay unpinned inside a shard's slice of the host.
            partition: (self.partition_threads >= 2).then(|| ParallelConfig {
                threads: self.partition_threads,
                pin: false,
                ..ParallelConfig::default()
            }),
        }
    }
}

/// Where the daemon listens for the binary protocol.
#[derive(Clone, Debug)]
pub enum Bind {
    /// TCP address, e.g. `127.0.0.1:0` for an ephemeral port.
    Tcp(String),
    /// Unix domain socket path (unlinked and re-bound on start).
    Unix(PathBuf),
}

/// The models `--preload default` registers, addressable by name over
/// the wire.
pub fn default_models() -> Vec<(String, ModelSpec)> {
    vec![
        (
            "didactic".to_string(),
            ModelSpec {
                kind: ModelKind::Didactic { stages: 2 },
                padding: 0,
                backend: EvalBackend::Compiled,
            },
        ),
        (
            "pipeline".to_string(),
            ModelSpec {
                kind: ModelKind::Pipeline {
                    stages: 4,
                    base: 100,
                    per_unit: 3,
                },
                padding: 0,
                backend: EvalBackend::Compiled,
            },
        ),
        (
            "pipeline-padded".to_string(),
            ModelSpec {
                kind: ModelKind::Pipeline {
                    stages: 8,
                    base: 60,
                    per_unit: 1,
                },
                padding: 64,
                backend: EvalBackend::Compiled,
            },
        ),
    ]
}

#[derive(Default)]
struct GlobalCounters {
    connections: AtomicU64,
    rejected: AtomicU64,
    /// Currently-open protocol connections (the live gauge; `connections`
    /// above is cumulative).
    live: AtomicU64,
}

struct ShardPort {
    sender: std::sync::mpsc::Sender<Job>,
    depth: Arc<AtomicUsize>,
}

struct ServerCtx {
    cfg: Arc<ServeConfig>,
    shutdown: Arc<AtomicBool>,
    ports: Vec<ShardPort>,
    next_shard: AtomicUsize,
    registry: Mutex<HashMap<String, ModelSpec>>,
    counters: GlobalCounters,
    reader_joins: Mutex<Vec<JoinHandle<()>>>,
    /// The request-lifecycle flight recorder; `None` when disabled.
    flight: Option<Arc<FlightRecorder>>,
    /// Correlation-id source: assigned once per admitted request.
    next_corr: AtomicU64,
    /// Daemon start, for the uptime gauge.
    started: Instant,
}

/// A running daemon; dropping it without
/// [`shutdown_and_join`](Server::shutdown_and_join) leaks its threads.
pub struct Server {
    ctx: Arc<ServerCtx>,
    shutdown: Arc<AtomicBool>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    metrics_addr: Option<SocketAddr>,
    accept_joins: Vec<JoinHandle<()>>,
    metrics_join: Option<JoinHandle<()>>,
    shards: Vec<ShardHandle>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tcp_addr", &self.tcp_addr)
            .field("unix_path", &self.unix_path)
            .field("metrics_addr", &self.metrics_addr)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Server {
    /// Starts the daemon: binds every listener, spawns the shard
    /// workers, accept loops, and (when `metrics_bind` is set) the
    /// `/metrics` listener.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(
        config: ServeConfig,
        binds: &[Bind],
        metrics_bind: Option<&str>,
    ) -> std::io::Result<Server> {
        let cfg = Arc::new(config);
        let shutdown = Arc::new(AtomicBool::new(false));
        let shard_count = cfg.shards.max(1);
        // One track per shard loop plus one per partition worker; the
        // table is sized exactly, so registration can never overflow
        // into the no-op handle.
        let flight = cfg.flight_recorder.then(|| {
            let workers = if cfg.partition_threads >= 2 { cfg.partition_threads } else { 0 };
            Arc::new(FlightRecorder::new(shard_count * (1 + workers), cfg.flight_spans))
        });
        let shards: Vec<ShardHandle> = (0..shard_count)
            .map(|i| spawn_shard(i, Arc::clone(&cfg), flight.clone()))
            .collect();
        let ports = shards
            .iter()
            .map(|s| ShardPort {
                sender: s.sender.clone(),
                depth: Arc::clone(&s.depth),
            })
            .collect();
        let ctx = Arc::new(ServerCtx {
            cfg: Arc::clone(&cfg),
            shutdown: Arc::clone(&shutdown),
            ports,
            next_shard: AtomicUsize::new(0),
            registry: Mutex::new(HashMap::new()),
            counters: GlobalCounters::default(),
            reader_joins: Mutex::new(Vec::new()),
            flight,
            next_corr: AtomicU64::new(1),
            started: Instant::now(),
        });

        let mut accept_joins = Vec::new();
        let mut tcp_addr = None;
        let mut unix_path = None;
        for bind in binds {
            match bind {
                Bind::Tcp(addr) => {
                    let listener = TcpListener::bind(addr.as_str())?;
                    tcp_addr = Some(listener.local_addr()?);
                    listener.set_nonblocking(true)?;
                    let ctx = Arc::clone(&ctx);
                    accept_joins.push(
                        std::thread::Builder::new()
                            .name("evolve-accept-tcp".into())
                            .spawn(move || accept_tcp(listener, ctx))
                            .expect("spawn accept loop"),
                    );
                }
                Bind::Unix(path) => {
                    let _ = std::fs::remove_file(path);
                    let listener = UnixListener::bind(path)?;
                    unix_path = Some(path.clone());
                    listener.set_nonblocking(true)?;
                    let ctx = Arc::clone(&ctx);
                    accept_joins.push(
                        std::thread::Builder::new()
                            .name("evolve-accept-unix".into())
                            .spawn(move || accept_unix(listener, ctx))
                            .expect("spawn accept loop"),
                    );
                }
            }
        }

        let mut metrics_addr = None;
        let mut metrics_join = None;
        if let Some(addr) = metrics_bind {
            let listener = TcpListener::bind(addr)?;
            metrics_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let slots: Vec<_> = shards.iter().map(|s| Arc::clone(&s.published)).collect();
            let ctx = Arc::clone(&ctx);
            metrics_join = Some(
                std::thread::Builder::new()
                    .name("evolve-metrics".into())
                    .spawn(move || metrics_loop(listener, slots, ctx))
                    .expect("spawn metrics listener"),
            );
        }

        Ok(Server {
            ctx,
            shutdown,
            tcp_addr,
            unix_path,
            metrics_addr,
            accept_joins,
            metrics_join,
            shards,
        })
    }

    /// The bound TCP address, when a [`Bind::Tcp`] was requested.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound unix socket path, when a [`Bind::Unix`] was requested.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// The `/metrics` listener address, when one was requested.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Registers a named model server-side (what `--preload` does).
    pub fn load_model(&self, name: &str, spec: ModelSpec) {
        self.ctx
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), spec);
    }

    /// Requests shed with BUSY so far.
    pub fn rejected(&self) -> u64 {
        self.ctx.counters.rejected.load(Ordering::SeqCst)
    }

    /// Renders the flight recorder as Chrome trace JSON (what a
    /// [`Request::Dump`] or SIGUSR1 produces); `None` when the daemon
    /// runs with the recorder disabled.
    pub fn dump_trace(&self) -> Option<String> {
        self.ctx.flight.as_ref().map(|r| r.render_chrome_trace())
    }

    /// Graceful shutdown: stops accepting, lets reader threads drain
    /// buffered frames, evaluates and answers every admitted request,
    /// then joins all threads.
    pub fn shutdown_and_join(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for j in self.accept_joins {
            let _ = j.join();
        }
        loop {
            let joins: Vec<_> = {
                let mut guard = self
                    .ctx
                    .reader_joins
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                guard.drain(..).collect()
            };
            if joins.is_empty() {
                break;
            }
            for j in joins {
                let _ = j.join();
            }
        }
        // Every sender clone lives in ctx (accept/reader threads are
        // gone): dropping ctx disconnects the shard channels, which is
        // the shards' signal to drain and exit.
        drop(self.ctx);
        for shard in self.shards {
            drop(shard.sender);
            let _ = shard.join.join();
        }
        if let Some(j) = self.metrics_join {
            let _ = j.join();
        }
        if let Some(path) = self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_tcp(listener: TcpListener, ctx: Arc<ServerCtx>) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_ok() {
                    let _ = stream.set_nodelay(true);
                    spawn_reader(Conn::Tcp(stream), &ctx);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn accept_unix(listener: UnixListener, ctx: Arc<ServerCtx>) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_ok() {
                    spawn_reader(Conn::Unix(stream), &ctx);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn spawn_reader(mut conn: Conn, ctx: &Arc<ServerCtx>) {
    let mut joins = ctx.reader_joins.lock().unwrap_or_else(|e| e.into_inner());
    // Reap readers whose connections already closed, so a long-running
    // daemon neither leaks JoinHandles nor counts dead connections
    // against the cap.
    joins.retain(|j| !j.is_finished());
    if joins.len() >= ctx.cfg.max_connections {
        // Best-effort typed refusal, then close; the write timeout keeps
        // a non-reading peer from blocking the accept loop.
        let _ = conn.set_write_timeout(Some(Duration::from_millis(100)));
        let payload = encode_response(&Response::Error {
            id: 0,
            message: format!("connection limit {} reached", ctx.cfg.max_connections),
        });
        let _ = write_frame(&mut conn, &payload, ctx.cfg.max_frame_len);
        return;
    }
    ctx.counters.connections.fetch_add(1, Ordering::SeqCst);
    ctx.counters.live.fetch_add(1, Ordering::SeqCst);
    let shard_idx =
        ctx.next_shard.fetch_add(1, Ordering::SeqCst) % ctx.ports.len().max(1);
    let ctx2 = Arc::clone(ctx);
    let join = std::thread::Builder::new()
        .name("evolve-conn".into())
        .spawn(move || {
            reader_loop(conn, shard_idx, Arc::clone(&ctx2));
            ctx2.counters.live.fetch_sub(1, Ordering::SeqCst);
        })
        .expect("spawn connection reader");
    joins.push(join);
}

fn reader_loop(mut conn: Conn, shard_idx: usize, ctx: Arc<ServerCtx>) {
    let writer = match conn.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    if conn.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
        return;
    }
    // SO_SNDTIMEO lives on the shared socket, so setting it here also
    // bounds the shard workers' response writes through the clone: a
    // peer that stops reading gets disconnected, not waited on forever.
    if ctx.cfg.write_timeout > Duration::ZERO
        && conn.set_write_timeout(Some(ctx.cfg.write_timeout)).is_err()
    {
        return;
    }
    let mut frames = FrameReader::new(ctx.cfg.max_frame_len);
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                frames.extend(&buf[..n]);
                if !drain_frames(&mut frames, &writer, shard_idx, &ctx) {
                    break;
                }
                // Re-check shutdown on the hot path too: a peer that
                // streams continuously never hits the timeout arm and
                // must not stall graceful drain indefinitely.
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // A partial frame at disconnect is simply discarded — a hostile or
    // crashed client must not take the daemon with it.
}

/// Returns `false` when the connection should close (unsynchronizable
/// stream).
fn drain_frames(
    frames: &mut FrameReader,
    writer: &Arc<Mutex<Conn>>,
    shard_idx: usize,
    ctx: &Arc<ServerCtx>,
) -> bool {
    loop {
        match frames.next_frame() {
            Ok(Some(payload)) => {
                if !handle_payload(&payload, writer, shard_idx, ctx) {
                    return false;
                }
            }
            Ok(None) => return true,
            Err(e) => {
                // An oversize prefix leaves no way to find the next
                // frame boundary: answer with a typed error and close.
                respond(
                    writer,
                    &Response::Error {
                        id: 0,
                        message: e.to_string(),
                    },
                    ctx,
                );
                return false;
            }
        }
    }
}

/// Admission validation of a wire-supplied model: `spec.build()` asserts
/// on zero stages and allocates proportionally to stages + padding, so
/// both are bounded here — before the spec reaches a shard — and the
/// client gets a typed error instead of a dead shard or an OOM.
fn validate_spec(spec: &ModelSpec, cfg: &ServeConfig) -> Result<(), String> {
    let (stages, chains) = match spec.kind {
        ModelKind::Didactic { stages } => (stages, 1),
        ModelKind::Pipeline { stages, .. } => (stages, 1),
        ModelKind::WidePipeline { stages, chains, .. } => (stages, chains),
    };
    if chains == 0 {
        return Err("model must have at least one padding chain".to_string());
    }
    if chains > spec.padding.max(1) {
        return Err(format!(
            "padding chains {chains} exceed padding nodes {}",
            spec.padding.max(1)
        ));
    }
    if stages == 0 {
        return Err("model must have at least one stage".to_string());
    }
    if stages > cfg.max_model_stages {
        return Err(format!(
            "model stages {stages} exceed cap {}",
            cfg.max_model_stages
        ));
    }
    if spec.padding > cfg.max_model_padding {
        return Err(format!(
            "model padding {} exceeds cap {}",
            spec.padding, cfg.max_model_padding
        ));
    }
    Ok(())
}

/// Admission validation of the trace: a generated trace materialises
/// `tokens` arrivals, so the count is bounded before any allocation.
/// (Explicit offers are already bounded by the frame cap.)
fn validate_trace(trace: &TracePayload, cfg: &ServeConfig) -> Result<(), String> {
    if let TracePayload::Generated(spec) = trace {
        if spec.tokens > cfg.max_trace_tokens {
            return Err(format!(
                "generated trace tokens {} exceed cap {}",
                spec.tokens, cfg.max_trace_tokens
            ));
        }
    }
    Ok(())
}

/// Short family tag of an inline spec, used as the flight-recorder span
/// label (named models use their registry name instead).
fn family_of(spec: &ModelSpec) -> &'static str {
    match spec.kind {
        ModelKind::Didactic { .. } => "didactic",
        ModelKind::Pipeline { .. } => "pipeline",
        ModelKind::WidePipeline { .. } => "wide-pipeline",
    }
}

fn handle_payload(
    payload: &[u8],
    writer: &Arc<Mutex<Conn>>,
    shard_idx: usize,
    ctx: &Arc<ServerCtx>,
) -> bool {
    // Decode is timed on the reader thread but recorded by the shard
    // worker (per-track single-writer discipline), so the pair of
    // instants travels with the job.
    let decode_start = ctx.flight.as_ref().map_or(0, |f| f.now_ns());
    let request = match decode_request(payload) {
        Ok(req) => req,
        Err(e) => {
            // Frame boundaries are intact; the connection stays usable.
            respond(
                writer,
                &Response::Error {
                    id: 0,
                    message: format!("malformed request: {e}"),
                },
                ctx,
            );
            return true;
        }
    };
    let decode_end = ctx.flight.as_ref().map_or(0, |f| f.now_ns());
    match request {
        Request::Ping { nonce } => {
            respond(writer, &Response::Pong { nonce }, ctx);
        }
        Request::Dump => {
            let json = match &ctx.flight {
                Some(rec) => rec.render_chrome_trace(),
                None => "{\"traceEvents\":[]}".to_string(),
            };
            // A dump larger than the frame cap would poison the stream
            // (write_frame refuses it and the connection closes); answer
            // with a typed error instead.
            if json.len() + 16 > ctx.cfg.max_frame_len {
                respond(
                    writer,
                    &Response::Error {
                        id: 0,
                        message: format!(
                            "trace dump ({} bytes) exceeds frame cap {}; lower --flight-spans",
                            json.len(),
                            ctx.cfg.max_frame_len
                        ),
                    },
                    ctx,
                );
            } else {
                respond(writer, &Response::Trace { json }, ctx);
            }
        }
        Request::Load { name, spec } => {
            if let Err(message) = validate_spec(&spec, &ctx.cfg) {
                respond(writer, &Response::Error { id: 0, message }, ctx);
                return true;
            }
            ctx.registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(name.clone(), spec);
            respond(writer, &Response::Loaded { name }, ctx);
        }
        Request::Eval(req) => {
            let (spec, label) = match req.model {
                ModelRef::Inline(spec) => {
                    let label = ctx.flight.as_ref().map_or(0, |f| f.intern(family_of(&spec)));
                    (spec, label)
                }
                ModelRef::Named(name) => {
                    let found = ctx
                        .registry
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .get(&name)
                        .cloned();
                    match found {
                        Some(spec) => {
                            // The client-supplied name becomes the span
                            // label; the exporter escapes it.
                            let label = ctx.flight.as_ref().map_or(0, |f| f.intern(&name));
                            (spec, label)
                        }
                        None => {
                            respond(
                                writer,
                                &Response::Error {
                                    id: req.id,
                                    message: format!("unknown model {name:?}"),
                                },
                                ctx,
                            );
                            return true;
                        }
                    }
                }
            };
            if let Err(message) = validate_spec(&spec, &ctx.cfg)
                .and_then(|()| validate_trace(&req.trace, &ctx.cfg))
            {
                respond(writer, &Response::Error { id: req.id, message }, ctx);
                return true;
            }
            let port = &ctx.ports[shard_idx];
            let admitted = port
                .depth
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |d| {
                    (d < ctx.cfg.max_queue_depth).then_some(d + 1)
                })
                .is_ok();
            if !admitted {
                ctx.counters.rejected.fetch_add(1, Ordering::SeqCst);
                respond(writer, &Response::Busy { id: req.id }, ctx);
                return true;
            }
            // Correlation id assigned at admission: shed requests never
            // consume one, so ids in a trace are exactly the admitted set.
            let corr = ctx.next_corr.fetch_add(1, Ordering::Relaxed);
            let admitted_ns = ctx.flight.as_ref().map_or(0, |f| f.now_ns());
            let job = Job {
                id: req.id,
                spec,
                arrivals: req.trace.arrivals(),
                writer: Arc::clone(writer),
                corr,
                admitted_ns,
                decode: (decode_start, decode_end),
                label,
            };
            if port.sender.send(job).is_err() {
                port.depth.fetch_sub(1, Ordering::SeqCst);
                respond(
                    writer,
                    &Response::Error {
                        id: req.id,
                        message: "shard unavailable".to_string(),
                    },
                    ctx,
                );
            }
        }
    }
    true
}

fn respond(writer: &Arc<Mutex<Conn>>, resp: &Response, ctx: &Arc<ServerCtx>) {
    let payload = encode_response(resp);
    let mut conn = writer.lock().unwrap_or_else(|e| e.into_inner());
    if write_frame(&mut *conn, &payload, ctx.cfg.max_frame_len).is_err() {
        // A failed (or timed-out, partial) write leaves the frame stream
        // unsynchronisable; close both halves so the reader exits too.
        conn.shutdown();
    }
}

// ---------------------------------------------------------------------------
// /metrics listener
// ---------------------------------------------------------------------------

fn merged_snapshot(slots: &[Arc<Mutex<MetricsSnapshot>>], ctx: &ServerCtx) -> MetricsSnapshot {
    let mut total = MetricsSnapshot::default();
    for slot in slots {
        let shard = slot.lock().unwrap_or_else(|e| e.into_inner());
        total.merge(&shard);
    }
    total.serve.connections += ctx.counters.connections.load(Ordering::SeqCst);
    total.serve.rejected += ctx.counters.rejected.load(Ordering::SeqCst);
    if let Some(rec) = &ctx.flight {
        total.phases = rec.phase_snapshots();
    }
    total.serve_gauges = Some(ServeGauges {
        queue_depth: ctx
            .ports
            .iter()
            .map(|p| p.depth.load(Ordering::SeqCst) as u64)
            .sum(),
        connections: ctx.counters.live.load(Ordering::SeqCst),
        uptime_seconds: ctx.started.elapsed().as_secs_f64(),
    });
    total
}

fn metrics_loop(
    listener: TcpListener,
    slots: Vec<Arc<Mutex<MetricsSnapshot>>>,
    ctx: Arc<ServerCtx>,
) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_http(stream, &slots, &ctx),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_http(mut stream: TcpStream, slots: &[Arc<Mutex<MetricsSnapshot>>], ctx: &ServerCtx) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while head.len() < 4096 && !head.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let line = String::from_utf8_lossy(&head);
    let line = line.lines().next().unwrap_or("");
    let (status, content_type, body) = if line.starts_with("GET /metrics") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus(&merged_snapshot(slots, ctx)),
        )
    } else {
        ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}
