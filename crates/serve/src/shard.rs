//! Shard workers: per-core evaluation loops with ModelSpec-affinity
//! continuous batching.
//!
//! Each shard owns its engine caches outright (no locks on the hot
//! path). Admitted requests are grouped by exact [`ModelSpec`]; a group
//! dispatches the moment it fills the configured batch width, or at the
//! `max_batch_delay` deadline if it is still underfull — so lanes fill
//! toward the SIMD chunk width under load while a lone request never
//! waits longer than the deadline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use evolve_core::{DeltaStats, Engine, EvalBackend, FastForwardStats};
use evolve_explore::cache::{
    delta_family_key, drive_prepared, drive_prepared_batch, prepare, prepare_batch, DeltaBases,
    DeltaLaneOutcome, DeltaMode, EngineCaches, EngineOptions, PreparedDrive,
};
use evolve_explore::{ModelSpec, ScenarioOutcome};
use evolve_model::Arrival;
use evolve_obs::{
    BatchCounters, DeltaCounters, FlightRecorder, MetricsSnapshot, PartitionTracer, Phase,
    ServeCounters, TelemetrySink, TrackId,
};

use crate::net::Conn;
use crate::protocol::{encode_response, write_frame, EvalResponse, Response};
use crate::server::ServeConfig;

/// How often a shard republishes its metrics snapshot at most.
const PUBLISH_INTERVAL: Duration = Duration::from_millis(25);

/// Receiver poll granularity while no group is pending.
const IDLE_TICK: Duration = Duration::from_millis(200);

/// One admitted evaluation request, en route to its shard.
pub(crate) struct Job {
    pub id: u64,
    pub spec: ModelSpec,
    pub arrivals: Vec<Arrival>,
    pub writer: Arc<Mutex<Conn>>,
    /// Server-assigned correlation id (admission order).
    pub corr: u64,
    /// Recorder instant of admission (queue-wait span start).
    pub admitted_ns: u64,
    /// Recorder instants around wire decode, measured on the reader
    /// thread and recorded here (single writer per track).
    pub decode: (u64, u64),
    /// Interned span label: the named-model id or the inline family tag.
    pub label: u32,
}

/// A shard's public face: the job queue, its admission depth gauge, and
/// the snapshot slot the metrics listener folds.
pub(crate) struct ShardHandle {
    pub sender: Sender<Job>,
    pub depth: Arc<AtomicUsize>,
    pub published: Arc<Mutex<MetricsSnapshot>>,
    pub join: JoinHandle<()>,
}

/// Spawns one shard worker thread.
pub(crate) fn spawn_shard(
    index: usize,
    cfg: Arc<ServeConfig>,
    flight: Option<Arc<FlightRecorder>>,
) -> ShardHandle {
    let (sender, receiver) = mpsc::channel::<Job>();
    let depth = Arc::new(AtomicUsize::new(0));
    let published = Arc::new(Mutex::new(MetricsSnapshot::default()));
    let worker_depth = Arc::clone(&depth);
    let worker_published = Arc::clone(&published);
    // Track registration happens here, before the thread exists, so the
    // dump's track order is deterministic: shard-0, its workers, shard-1…
    let flight = flight.map(|recorder| {
        let track = recorder.register_track(&format!("shard-{index}"));
        let workers = if cfg.partition_threads >= 2 { cfg.partition_threads } else { 0 };
        let worker_tracks: Vec<TrackId> = (0..workers)
            .map(|p| recorder.register_track(&format!("shard-{index}/worker-{p}")))
            .collect();
        ShardFlight { recorder, track, worker_tracks }
    });
    let join = std::thread::Builder::new()
        .name(format!("evolve-shard-{index}"))
        .spawn(move || {
            Worker::new(cfg, worker_depth, worker_published, flight).run(receiver);
        })
        .expect("spawn shard worker");
    ShardHandle {
        sender,
        depth,
        published,
        join,
    }
}

struct Group {
    jobs: Vec<Job>,
    first_at: Instant,
    /// Recorder instant of group creation (batch-form span start).
    formed_ns: u64,
}

/// A shard's view of the flight recorder: its own track (the single
/// writer is the shard thread) and the pre-registered partition-worker
/// tracks it lends to engines via [`PartitionTracer`].
struct ShardFlight {
    recorder: Arc<FlightRecorder>,
    track: TrackId,
    worker_tracks: Vec<TrackId>,
}

impl ShardFlight {
    fn record(&self, phase: Phase, corr: u64, start_ns: u64, end_ns: u64, label: u32, arg: u64) {
        self.recorder
            .record(self.track, phase, corr, start_ns, end_ns, label, arg);
    }
}

struct Worker {
    cfg: Arc<ServeConfig>,
    options: EngineOptions,
    caches: EngineCaches,
    bases: DeltaBases,
    sink: Option<Box<TelemetrySink>>,
    counters: ServeCounters,
    depth: Arc<AtomicUsize>,
    published: Arc<Mutex<MetricsSnapshot>>,
    last_publish: Option<Instant>,
    flight: Option<ShardFlight>,
}

impl Worker {
    fn new(
        cfg: Arc<ServeConfig>,
        depth: Arc<AtomicUsize>,
        published: Arc<Mutex<MetricsSnapshot>>,
        flight: Option<ShardFlight>,
    ) -> Self {
        let options = cfg.engine_options();
        let sink = cfg.telemetry.then(|| Box::new(TelemetrySink::new()));
        Worker {
            cfg,
            options,
            caches: EngineCaches::default(),
            bases: DeltaBases::default(),
            sink,
            counters: ServeCounters::default(),
            depth,
            published,
            last_publish: None,
            flight,
        }
    }

    /// Recorder time, or 0 when detached (nothing will be recorded).
    fn flight_now(&self) -> u64 {
        self.flight.as_ref().map_or(0, |f| f.recorder.now_ns())
    }

    /// Lends the shard's partition-worker tracks to a scalar engine so
    /// the parallel path emits sweep/validate/rollback spans under this
    /// request's correlation id. The shard evaluates one engine at a
    /// time, so the per-track single-writer contract holds even though
    /// cached engines share the tracks.
    fn attach_flight(flight: &Option<ShardFlight>, engine: &mut Engine, corr: u64) {
        let Some(f) = flight else { return };
        if f.worker_tracks.is_empty() {
            return;
        }
        if !engine.flight_attached() {
            engine.set_flight_recorder(Some(PartitionTracer {
                recorder: Arc::clone(&f.recorder),
                tracks: f.worker_tracks.clone(),
                corr,
            }));
        }
        engine.set_flight_corr(corr);
    }

    fn run(mut self, receiver: Receiver<Job>) {
        let width = self.cfg.batch_width.max(1);
        let immediate = self.cfg.naive || width == 1;
        let mut groups: Vec<(ModelSpec, Group)> = Vec::new();
        self.publish(true);
        loop {
            let timeout = groups
                .iter()
                .map(|(_, g)| {
                    (g.first_at + self.cfg.max_batch_delay)
                        .saturating_duration_since(Instant::now())
                })
                .min()
                .unwrap_or(IDLE_TICK);
            match receiver.recv_timeout(timeout) {
                Ok(job) => {
                    self.counters.requests += 1;
                    if immediate {
                        let spec = job.spec.clone();
                        let formed_ns = self.flight_now();
                        self.dispatch(&spec, vec![job], true, formed_ns);
                        continue;
                    }
                    let pos = groups.iter().position(|(spec, _)| *spec == job.spec);
                    match pos {
                        Some(i) => groups[i].1.jobs.push(job),
                        None => {
                            let formed_ns = self.flight_now();
                            groups.push((
                                job.spec.clone(),
                                Group {
                                    first_at: Instant::now(),
                                    jobs: vec![job],
                                    formed_ns,
                                },
                            ));
                        }
                    }
                    let full = groups
                        .iter()
                        .position(|(_, g)| g.jobs.len() >= width)
                        .map(|i| groups.swap_remove(i));
                    if let Some((spec, group)) = full {
                        self.dispatch(&spec, group.jobs, true, group.formed_ns);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Idle tick: counters accrued since the last
                    // (throttled) dispatch publish become visible.
                    self.publish(false);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Graceful drain: every already-admitted request is
                    // evaluated and answered before the shard exits.
                    for (spec, group) in groups.drain(..) {
                        self.dispatch(&spec, group.jobs, false, group.formed_ns);
                    }
                    self.publish(true);
                    return;
                }
            }
            let now = Instant::now();
            let mut i = 0;
            while i < groups.len() {
                if now.saturating_duration_since(groups[i].1.first_at) >= self.cfg.max_batch_delay
                {
                    let (spec, group) = groups.swap_remove(i);
                    self.dispatch(&spec, group.jobs, false, group.formed_ns);
                } else {
                    i += 1;
                }
            }
        }
    }

    fn dispatch(&mut self, spec: &ModelSpec, jobs: Vec<Job>, full: bool, formed_ns: u64) {
        if full {
            self.counters.batches_full += 1;
        } else {
            self.counters.batches_deadline += 1;
        }
        let n = jobs.len();
        if let Some(f) = &self.flight {
            // Per-request lifecycle spans up to dispatch: decode
            // (measured on the reader thread), queue wait (admission →
            // here), and group formation (first lane parked → here,
            // annotated with the lane count and model family).
            let now = f.recorder.now_ns();
            for job in &jobs {
                f.record(Phase::Decode, job.corr, job.decode.0, job.decode.1, job.label, 0);
                f.record(Phase::QueueWait, job.corr, job.admitted_ns, now, 0, 0);
                f.record(Phase::BatchForm, job.corr, formed_ns, now, job.label, n as u64);
            }
        }
        let batchable = !self.cfg.naive
            && n >= 2
            && spec.backend == EvalBackend::Compiled
            && jobs.iter().all(|j| !j.arrivals.is_empty());
        if batchable {
            self.dispatch_batched(spec, jobs);
        } else {
            for job in jobs {
                self.eval_scalar(spec, job, n as u32);
            }
        }
        self.depth.fetch_sub(n, Ordering::SeqCst);
        self.publish(false);
    }

    fn dispatch_batched(&mut self, spec: &ModelSpec, jobs: Vec<Job>) {
        let n = jobs.len();
        let options = self.options;
        let supported = self
            .caches
            .batch
            .entry(spec.clone())
            .or_insert_with(|| prepare_batch(spec, &options, n).map(|p| vec![p]))
            .is_ok();
        if !supported {
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record_batch(BatchCounters {
                    eject_unsupported: n as u64,
                    ..BatchCounters::default()
                });
            }
            for job in jobs {
                self.eval_scalar(spec, job, n as u32);
            }
            return;
        }
        let mut prepared = {
            let pool = self
                .caches
                .batch
                .get_mut(spec)
                .and_then(|r| r.as_mut().ok())
                .expect("pool just inserted as supported");
            pool.pop()
        };
        let mut prepared = match prepared.take() {
            Some(p) => p,
            None => prepare_batch(spec, &options, n).expect("spec known batch-supported"),
        };
        let before_iters = prepared.engine.stats().batched_iterations;
        let before_kernel = prepared.engine.kernel_dispatch();
        let traces: Vec<&[Arrival]> = jobs.iter().map(|j| j.arrivals.as_slice()).collect();
        let eval_start = self.flight_now();
        let (outcomes, _reused, _wall) = drive_prepared_batch(&mut prepared, &traces, &mut self.sink);
        let eval_end = self.flight_now();
        if let Some(f) = &self.flight {
            // One eval span per lane (every admitted request gets one),
            // all covering the shared lockstep drive.
            for job in &jobs {
                f.record(Phase::Eval, job.corr, eval_start, eval_end, job.label, n as u64);
            }
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            let after_kernel = prepared.engine.kernel_dispatch();
            sink.record_batch(BatchCounters {
                batch_width: self.cfg.batch_width as u64,
                batches_formed: 1,
                lanes_batched: n as u64,
                lockstep_iterations: prepared
                    .engine
                    .stats()
                    .batched_iterations
                    .saturating_sub(before_iters),
                kernel_chunked_sweeps: after_kernel
                    .chunked_sweeps
                    .saturating_sub(before_kernel.chunked_sweeps),
                kernel_scalar_sweeps: after_kernel
                    .scalar_sweeps
                    .saturating_sub(before_kernel.scalar_sweeps),
                ..BatchCounters::default()
            });
        }
        for (lane, (job, outcome)) in jobs.into_iter().zip(outcomes).enumerate() {
            let ff = prepared.engine.lane_fast_forward_stats(lane);
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record_engine(outcome.engine_stats.into());
                sink.record_ff(ff.into());
            }
            self.counters.lanes_batched += 1;
            let resp = eval_ok(job.id, &outcome, ff, None, true, n as u32);
            self.respond(&job.writer, &Response::EvalOk(resp), job.corr);
        }
        if let Some(Ok(pool)) = self.caches.batch.get_mut(spec) {
            pool.push(prepared);
        }
    }

    fn eval_scalar(&mut self, spec: &ModelSpec, job: Job, lanes_in_batch: u32) {
        let options = self.options;
        let key = (self.cfg.delta && !self.cfg.naive && !job.arrivals.is_empty())
            .then(|| delta_family_key(spec))
            .flatten();
        let base = key.as_ref().and_then(|k| self.bases.get(k).cloned());
        let mode = match (&base, &key) {
            (Some(arc), _) => DeltaMode::Sibling(arc),
            (None, Some(_)) => DeltaMode::CaptureBase,
            (None, None) => DeltaMode::Off,
        };
        let eval_start = self.flight_now();
        let drive = if self.cfg.naive {
            // Baseline serving strategy: a fresh engine per request, no
            // cache, no delta chain — what a one-request-per-process
            // evaluator would do.
            let mut fresh = prepare(spec, &options);
            Self::attach_flight(&self.flight, &mut fresh.engine, job.corr);
            drive_prepared(&mut fresh, &job.arrivals, &options, &mut self.sink, mode)
        } else {
            let prepared = self.caches.scalar_mut(spec, &options);
            Self::attach_flight(&self.flight, &mut prepared.engine, job.corr);
            drive_prepared(prepared, &job.arrivals, &options, &mut self.sink, mode)
        };
        if let Some(f) = &self.flight {
            f.record(Phase::Eval, job.corr, eval_start, f.recorder.now_ns(), job.label, 1);
        }
        let PreparedDrive {
            outcome,
            fast_forward,
            delta,
            ..
        } = drive;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record_engine(outcome.engine_stats.into());
            sink.record_ff(fast_forward.into());
        }
        let mut attached: Option<DeltaStats> = None;
        match delta {
            DeltaLaneOutcome::Captured(cache) => {
                if let Some(k) = key {
                    self.bases.insert(k, cache);
                }
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.record_delta(DeltaCounters {
                        lanes_base: 1,
                        ..DeltaCounters::default()
                    });
                }
            }
            DeltaLaneOutcome::Attached(stats) => {
                attached = Some(stats);
                self.counters.lanes_delta += 1;
                if let Some(sink) = self.sink.as_deref_mut() {
                    let mut dc: DeltaCounters = stats.into();
                    dc.lanes_delta = 1;
                    sink.record_delta(dc);
                }
            }
            DeltaLaneOutcome::NotRequested
            | DeltaLaneOutcome::CaptureFailed(_)
            | DeltaLaneOutcome::Ejected(_) => {}
        }
        self.counters.lanes_scalar += 1;
        let resp = eval_ok(job.id, &outcome, fast_forward, attached, false, lanes_in_batch);
        self.respond(&job.writer, &Response::EvalOk(resp), job.corr);
    }

    fn respond(&mut self, writer: &Arc<Mutex<Conn>>, resp: &Response, corr: u64) {
        let encode_start = self.flight_now();
        let payload = encode_response(resp);
        let write_start = self.flight_now();
        let mut conn = writer.lock().unwrap_or_else(|e| e.into_inner());
        match write_frame(&mut *conn, &payload, self.cfg.max_frame_len) {
            Ok(()) => {
                if matches!(resp, Response::EvalOk(_)) {
                    self.counters.responses += 1;
                }
            }
            Err(_) => {
                // Peer gone or write timed out mid-response: the frame
                // stream is unsynchronisable, so close both halves
                // (unblocking the connection's reader) and count it.
                conn.shutdown();
                self.counters.errors += 1;
            }
        }
        drop(conn);
        if let Some(f) = &self.flight {
            f.record(Phase::Encode, corr, encode_start, write_start, 0, 0);
            // The write span includes lock acquisition: contention on the
            // connection writer is response-path latency too.
            f.record(Phase::Write, corr, write_start, f.recorder.now_ns(), 0, payload.len() as u64);
        }
    }

    fn publish(&mut self, force: bool) {
        if !force {
            if let Some(last) = self.last_publish {
                if last.elapsed() < PUBLISH_INTERVAL {
                    return;
                }
            }
        }
        self.last_publish = Some(Instant::now());
        let mut snap = match self.sink.as_deref_mut() {
            Some(sink) => sink.snapshot(),
            None => MetricsSnapshot::default(),
        };
        snap.serve = self.counters;
        *self.published.lock().unwrap_or_else(|e| e.into_inner()) = snap;
    }
}

/// Builds the wire response for one evaluated lane.
fn eval_ok(
    id: u64,
    outcome: &ScenarioOutcome,
    ff: FastForwardStats,
    delta: Option<DeltaStats>,
    batched: bool,
    lanes_in_batch: u32,
) -> EvalResponse {
    let es = outcome.engine_stats;
    EvalResponse {
        id,
        outputs: outcome.outputs.clone(),
        input_acks: outcome.input_acks.clone(),
        engine: [
            es.nodes_computed,
            es.arcs_evaluated,
            es.iterations_completed,
            es.lanes_evaluated,
            es.batched_iterations,
        ],
        ff: [ff.promotions, ff.demotions, ff.fast_forwarded_iterations],
        delta_attached: delta.is_some(),
        delta: delta
            .map(|d| {
                [
                    d.calls_delta,
                    d.calls_full,
                    d.nodes_reused,
                    d.nodes_recomputed,
                    d.nodes_settled,
                    d.frontier_collapses,
                ]
            })
            .unwrap_or_default(),
        batched,
        lanes_in_batch,
    }
}
