//! Minimal SIGTERM/SIGINT/SIGUSR1 latches without a libc dependency.
//!
//! The handlers only store into atomic flags (async-signal-safe); the
//! daemon's main loop polls [`triggered`] for the graceful drain and
//! [`take_usr1`] for on-demand flight-recorder dumps, both from ordinary
//! thread context.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);
static USR1: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;
#[cfg(target_os = "linux")]
const SIGUSR1: i32 = 10;
#[cfg(not(target_os = "linux"))]
const SIGUSR1: i32 = 30;

#[allow(unsafe_code)]
mod raw {
    // Declared by hand: the workspace is offline and must not pull in
    // the `libc` crate for two syscall wrappers.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::TRIGGERED.store(true, super::Ordering::SeqCst);
    }

    extern "C" fn on_usr1(_signum: i32) {
        super::USR1.store(true, super::Ordering::SeqCst);
    }

    pub(super) fn install(signum: i32) {
        // SAFETY: `signal(2)` with a function pointer whose body is a
        // single atomic store; both are async-signal-safe.
        unsafe {
            signal(signum, on_signal as *const () as usize);
        }
    }

    pub(super) fn install_usr1(signum: i32) {
        // SAFETY: as above — the handler is one atomic store.
        unsafe {
            signal(signum, on_usr1 as *const () as usize);
        }
    }
}

/// Installs the latches for SIGTERM, SIGINT, and SIGUSR1. Idempotent.
pub fn install() {
    raw::install(SIGTERM);
    raw::install(SIGINT);
    raw::install_usr1(SIGUSR1);
}

/// Whether a termination signal has been received since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Consumes a pending SIGUSR1 (dump request): `true` at most once per
/// delivered signal.
pub fn take_usr1() -> bool {
    USR1.swap(false, Ordering::SeqCst)
}

/// Resets the latches (test support).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
    USR1.store(false, Ordering::SeqCst);
}
