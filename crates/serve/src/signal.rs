//! Minimal SIGTERM/SIGINT latch without a libc dependency.
//!
//! The handler only stores into an atomic flag (async-signal-safe); the
//! daemon's main loop polls [`triggered`] and runs the graceful drain
//! from ordinary thread context.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod raw {
    // Declared by hand: the workspace is offline and must not pull in
    // the `libc` crate for two syscall wrappers.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::TRIGGERED.store(true, super::Ordering::SeqCst);
    }

    pub(super) fn install(signum: i32) {
        // SAFETY: `signal(2)` with a function pointer whose body is a
        // single atomic store; both are async-signal-safe.
        unsafe {
            signal(signum, on_signal as *const () as usize);
        }
    }
}

/// Installs the latch for SIGTERM and SIGINT. Idempotent.
pub fn install() {
    raw::install(SIGTERM);
    raw::install(SIGINT);
}

/// Whether a termination signal has been received since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Resets the latch (test support).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}
