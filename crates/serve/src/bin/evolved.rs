//! The `evolved` daemon binary.
//!
//! Serves engine evaluations over TCP and/or unix sockets with
//! ModelSpec-affinity continuous batching, and exposes live Prometheus
//! metrics. SIGTERM/SIGINT drain in-flight batches, answer every
//! admitted request, and exit 0.
//!
//! ```text
//! evolved --unix /tmp/evolved.sock --metrics 127.0.0.1:9464 \
//!         --preload default --state-file /tmp/evolved.state
//! ```

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use evolve_serve::{default_models, signal, Bind, ServeConfig, Server};

const USAGE: &str = "\
evolved - evaluation-as-a-service daemon

USAGE:
    evolved [OPTIONS]

OPTIONS:
    --tcp ADDR               listen for the binary protocol on a TCP address
    --unix PATH              listen on a unix domain socket
    --metrics ADDR           serve GET /metrics (Prometheus text) on a TCP address
    --shards N               shard worker threads [default: available cores]
    --batch-width N          lanes per affinity batch [default: SIMD chunk width]
    --max-batch-delay-us N   continuous-batching deadline in microseconds [default: 2000]
    --max-queue-depth N      per-shard admission cap [default: 1024]
    --max-connections N      concurrent connection cap [default: 1024]
    --write-timeout-ms N     response write timeout, 0 = none [default: 5000]
    --max-trace-tokens N     generated-trace arrivals cap [default: 524288]
    --partition-threads N    intra-graph partition workers for large scalar
                             lanes, <= 1 = serial sweep [default: 1]
    --trace-out PATH         write a Chrome-trace JSON dump of the flight
                             recorder on SIGUSR1 and at shutdown
    --flight-spans N         flight-recorder ring capacity per track, rounded
                             up to a power of two [default: 1024]
    --no-flight-recorder     disable the always-on flight recorder
    --naive                  baseline mode: fresh engine per request, no batching
    --no-delta               disable cross-request delta chaining
    --no-fast-forward        disable periodic fast-forward
    --no-telemetry           do not attach per-shard telemetry sinks
    --record-observations    record full observation streams
    --preload default        register the built-in named models
    --state-file PATH        write `tcp=`/`unix=`/`metrics=`/`pid=` lines once ready
    -h, --help               print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("evolved: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServeConfig::default();
    let mut binds = Vec::new();
    let mut metrics: Option<String> = None;
    let mut preload = false;
    let mut state_file: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--tcp" => match value("--tcp") {
                Ok(v) => binds.push(Bind::Tcp(v)),
                Err(e) => return fail(&e),
            },
            "--unix" => match value("--unix") {
                Ok(v) => binds.push(Bind::Unix(v.into())),
                Err(e) => return fail(&e),
            },
            "--metrics" => match value("--metrics") {
                Ok(v) => metrics = Some(v),
                Err(e) => return fail(&e),
            },
            "--shards" => match value("--shards").and_then(parse_usize) {
                Ok(v) => config.shards = v.max(1),
                Err(e) => return fail(&e),
            },
            "--batch-width" => match value("--batch-width").and_then(parse_usize) {
                Ok(v) => config.batch_width = v.max(1),
                Err(e) => return fail(&e),
            },
            "--max-batch-delay-us" => match value("--max-batch-delay-us").and_then(parse_u64) {
                Ok(v) => config.max_batch_delay = Duration::from_micros(v),
                Err(e) => return fail(&e),
            },
            "--max-queue-depth" => match value("--max-queue-depth").and_then(parse_usize) {
                Ok(v) => config.max_queue_depth = v.max(1),
                Err(e) => return fail(&e),
            },
            "--max-connections" => match value("--max-connections").and_then(parse_usize) {
                Ok(v) => config.max_connections = v.max(1),
                Err(e) => return fail(&e),
            },
            "--write-timeout-ms" => match value("--write-timeout-ms").and_then(parse_u64) {
                Ok(v) => config.write_timeout = Duration::from_millis(v),
                Err(e) => return fail(&e),
            },
            "--max-trace-tokens" => match value("--max-trace-tokens").and_then(parse_u64) {
                Ok(v) => config.max_trace_tokens = v,
                Err(e) => return fail(&e),
            },
            "--partition-threads" => match value("--partition-threads").and_then(parse_usize) {
                Ok(v) => config.partition_threads = v,
                Err(e) => return fail(&e),
            },
            "--trace-out" => match value("--trace-out") {
                Ok(v) => trace_out = Some(v),
                Err(e) => return fail(&e),
            },
            "--flight-spans" => match value("--flight-spans").and_then(parse_usize) {
                Ok(v) => config.flight_spans = v.max(1),
                Err(e) => return fail(&e),
            },
            "--no-flight-recorder" => config.flight_recorder = false,
            "--naive" => config.naive = true,
            "--no-delta" => config.delta = false,
            "--no-fast-forward" => config.fast_forward = evolve_core::FastForward::Off,
            "--no-telemetry" => config.telemetry = false,
            "--record-observations" => config.record_observations = true,
            "--preload" => match value("--preload") {
                Ok(v) if v == "default" => preload = true,
                Ok(v) => return fail(&format!("unknown preload set {v:?}")),
                Err(e) => return fail(&e),
            },
            "--state-file" => match value("--state-file") {
                Ok(v) => state_file = Some(v),
                Err(e) => return fail(&e),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }

    if binds.is_empty() {
        return fail("at least one of --tcp or --unix is required");
    }

    signal::install();
    let server = match Server::start(config, &binds, metrics.as_deref()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("evolved: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    if preload {
        for (name, spec) in default_models() {
            server.load_model(&name, spec);
        }
    }

    if let Some(tcp) = server.tcp_addr() {
        eprintln!("evolved: listening on tcp:{tcp}");
    }
    if let Some(path) = server.unix_path() {
        eprintln!("evolved: listening on unix:{}", path.display());
    }
    if let Some(addr) = server.metrics_addr() {
        eprintln!("evolved: metrics at http://{addr}/metrics");
    }

    if let Some(path) = &state_file {
        let mut state = String::new();
        if let Some(tcp) = server.tcp_addr() {
            state.push_str(&format!("tcp={tcp}\n"));
        }
        if let Some(p) = server.unix_path() {
            state.push_str(&format!("unix={}\n", p.display()));
        }
        if let Some(addr) = server.metrics_addr() {
            state.push_str(&format!("metrics={addr}\n"));
        }
        state.push_str(&format!("pid={}\n", std::process::id()));
        // Write-then-rename so a watcher never reads a partial file.
        let tmp = format!("{path}.tmp");
        let ok = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(state.as_bytes()).and_then(|()| f.sync_all()))
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = ok {
            eprintln!("evolved: cannot write state file {path}: {e}");
        }
    }

    while !signal::triggered() {
        std::thread::sleep(Duration::from_millis(50));
        if signal::take_usr1() {
            dump_trace(&server, trace_out.as_deref());
        }
    }
    if trace_out.is_some() {
        // Final snapshot before the drain consumes the server; spans from
        // the drain itself are observable via a SIGUSR1 dump instead.
        dump_trace(&server, trace_out.as_deref());
    }
    eprintln!("evolved: draining in-flight batches");
    server.shutdown_and_join();
    eprintln!("evolved: drained, exiting");
    ExitCode::SUCCESS
}

/// Writes the flight-recorder dump atomically (write-then-rename, like the
/// state file) so a Perfetto user never loads a torn JSON document.
fn dump_trace(server: &Server, trace_out: Option<&str>) {
    let Some(json) = server.dump_trace() else {
        eprintln!("evolved: flight recorder disabled, nothing to dump");
        return;
    };
    let Some(path) = trace_out else {
        eprintln!("evolved: SIGUSR1 without --trace-out, dump discarded");
        return;
    };
    let tmp = format!("{path}.tmp");
    let ok = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.sync_all()))
        .and_then(|()| std::fs::rename(&tmp, path));
    match ok {
        Ok(()) => eprintln!("evolved: trace dumped to {path}"),
        Err(e) => eprintln!("evolved: cannot write trace {path}: {e}"),
    }
}

fn parse_usize(v: String) -> Result<usize, String> {
    v.parse().map_err(|_| format!("not a number: {v:?}"))
}

fn parse_u64(v: String) -> Result<u64, String> {
    v.parse().map_err(|_| format!("not a number: {v:?}"))
}
