//! Transport abstraction: one connection type over TCP or unix sockets.
//!
//! The daemon listens on both transports with identical framing, so the
//! reader/writer plumbing and the client work against this enum instead
//! of duplicating per-transport code paths.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum Conn {
    /// TCP socket.
    Tcp(TcpStream),
    /// Unix domain socket.
    Unix(UnixStream),
}

impl Conn {
    /// Clones the underlying descriptor so reads and writes can happen
    /// on separate threads.
    pub fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    /// Sets the read timeout, used by reader threads to poll shutdown.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Sets the write timeout (`SO_SNDTIMEO`), so a peer that stops
    /// reading cannot block a response writer forever on a full send
    /// buffer.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(dur),
            Conn::Unix(s) => s.set_write_timeout(dur),
        }
    }

    /// Shuts down both directions, unblocking any peer reads.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}
